//! Simulation events and the event queue.
//!
//! The simulator is a classic discrete-event loop: external request arrivals
//! (already sorted by the workload generator) are merged with internal events
//! (request completions, pod expiries, periodic policy ticks) drawn from a
//! priority queue ordered by timestamp with a deterministic sequence-number
//! tie-break, so simulations are exactly reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fntrace::{FunctionId, PodId};

/// An internal simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A request finishes executing on a pod.
    RequestComplete {
        /// The pod serving the request.
        pod: PodId,
        /// How long the request kept the pod busy, in milliseconds.
        busy_ms: u64,
    },
    /// A pod's keep-alive timer fires; the pod is deleted if still idle and
    /// the expiry generation matches.
    PodExpire {
        /// The pod to expire.
        pod: PodId,
        /// Generation counter to invalidate stale expiry events.
        generation: u64,
    },
    /// A request whose admission was deferred (peak shaving) becomes runnable.
    DelayedArrival {
        /// The function to invoke.
        function: FunctionId,
    },
    /// Periodic tick that lets the pre-warm policy act.
    PrewarmTick,
    /// Periodic tick that replenishes the resource pools.
    PoolReplenishTick,
}

/// A timestamped event with a deterministic tie-break sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time_ms: u64,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time_ms
            .cmp(&self.time_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of internal events ordered by time.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at the given absolute time.
    pub fn push(&mut self, time_ms: u64, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            time_ms,
            seq: self.seq,
            event,
        });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.time_ms)
    }

    /// Pops the next event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|s| (s.time_ms, s.event))
    }

    /// Pops the next event only if it is due at or before `time_ms`.
    pub fn pop_due(&mut self, time_ms: u64) -> Option<(u64, Event)> {
        if self.peek_time()? <= time_ms {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::PrewarmTick);
        q.push(10, Event::PoolReplenishTick);
        q.push(
            20,
            Event::RequestComplete {
                pod: PodId::new(1),
                busy_ms: 5,
            },
        );
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(
            5,
            Event::PodExpire {
                pod: PodId::new(1),
                generation: 0,
            },
        );
        q.push(
            5,
            Event::PodExpire {
                pod: PodId::new(2),
                generation: 0,
            },
        );
        q.push(
            5,
            Event::PodExpire {
                pod: PodId::new(3),
                generation: 0,
            },
        );
        let pods: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::PodExpire { pod, .. } => pod.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pods, vec![1, 2, 3]);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(100, Event::PrewarmTick);
        q.push(50, Event::PoolReplenishTick);
        assert_eq!(q.peek_time(), Some(50));
        assert!(q.pop_due(40).is_none());
        assert_eq!(q.pop_due(60).unwrap().0, 50);
        assert!(q.pop_due(60).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(100).unwrap().0, 100);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.pop_due(1000).is_none());
        assert_eq!(q.len(), 0);
    }
}

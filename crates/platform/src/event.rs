//! Simulation events and the event queue.
//!
//! The simulator is a classic discrete-event loop: external request arrivals
//! (already sorted by the workload generator) are merged with internal events
//! (request completions, pod expiries, periodic policy ticks) drawn from a
//! priority queue ordered by timestamp with a deterministic sequence-number
//! tie-break, so simulations are exactly reproducible.
//!
//! # Hierarchical timing wheel
//!
//! [`EventQueue`] is a four-level hashed timing wheel (the structure used by
//! kernel timers and async runtimes) rather than a binary heap. The simulated
//! load is dominated by short relative delays — request completions a few
//! hundred milliseconds out, keep-alive expiries about a minute out, periodic
//! ticks — exactly the distribution a wheel turns into O(1) pushes and
//! amortised O(1) pops, where a heap pays O(log n) with poor locality on
//! every operation.
//!
//! * Level `L` has 256 slots of 256^L milliseconds each; the four levels
//!   together span 2^32 ms (~49.7 days) from the queue's internal cursor.
//!   An event is filed on the level of the highest bit in which its time
//!   differs from the cursor (`time ^ now`), so every slot holds events of
//!   exactly one 256^L-ms granule and a slot scan never has to wrap.
//! * Level-0 slots are exact milliseconds. When the cursor reaches one, the
//!   whole slot is drained **as a single batch**: a burst of co-scheduled
//!   same-timestamp events (dense periodic ticks, keep-alive expiry storms)
//!   is sorted by sequence number once and then popped by cursor increment,
//!   one cascade step for the entire burst.
//! * Events beyond the outer horizon go to a small overflow [`BinaryHeap`]
//!   and migrate into the wheel lazily as the cursor approaches them.
//! * Events scheduled behind the cursor (never produced by the engine, but
//!   allowed by the API) go to an overdue heap that always pops first.
//!
//! # Determinism contract
//!
//! The wheel is observationally identical to the binary-heap queue it
//! replaced: events pop in ascending `(time_ms, seq)` order, where `seq` is
//! the queue's own push counter — i.e. time order with same-timestamp FIFO
//! stability. In a sharded run every shard engine owns one queue, so `seq`
//! orders each shard's events independently; cross-shard ordering is fixed
//! by the epoch merge instead (see [`crate::shard`]).
//! `tests/wheel_properties.rs` pins the queue order with a heap oracle
//! under randomized push/pop/pop_due interleavings, including far-future
//! overflow and same-timestamp bursts. Every committed envelope and BENCH
//! baseline was produced under this order and must stay byte-identical
//! across scheduler implementations.

use std::collections::BinaryHeap;

use crate::arena::{FnIdx, PodIdx};

/// An internal simulation event.
///
/// Events reference pods and functions by their dense arena indices
/// ([`PodIdx`], [`FnIdx`]) rather than by hashed 64-bit identifiers, so
/// handling an internal event never touches a hash table — see
/// [`crate::arena`] for the id-allocation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A request finishes executing on a pod.
    RequestComplete {
        /// The pod serving the request.
        pod: PodIdx,
        /// How long the request kept the pod busy, in milliseconds.
        busy_ms: u64,
    },
    /// A pod's keep-alive timer fires; the pod is deleted if still idle and
    /// the expiry generation matches.
    PodExpire {
        /// The pod to expire.
        pod: PodIdx,
        /// Generation counter to invalidate stale expiry events.
        generation: u64,
    },
    /// A request whose admission was deferred (peak shaving) becomes runnable.
    DelayedArrival {
        /// The function to invoke.
        function: FnIdx,
    },
    /// Periodic tick that lets the pre-warm policy act.
    ///
    /// Pool replenishment has no event of its own: it happens at epoch
    /// boundaries, outside the wheel (see [`crate::shard`]).
    PrewarmTick,
}

/// A timestamped event with a deterministic tie-break sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time_ms: u64,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time_ms
            .cmp(&self.time_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Slots per wheel level (one byte of the timestamp per level).
const SLOTS: usize = 256;
/// Number of wheel levels; times further than `2^(8 * LEVELS)` ms from the
/// cursor overflow into a heap.
const LEVELS: usize = 4;
/// Total bits covered by the wheel.
const WHEEL_BITS: u32 = 8 * LEVELS as u32;

/// Capacity a drained slot may keep for reuse. Every slot of every level is
/// eventually cycled through by the cursor, so letting each retain its
/// high-water allocation would pin memory proportional to the busiest granule
/// times the slot count; beyond this cap the buffer is released instead.
const SLOT_KEEP_CAP: usize = 32;

/// One wheel level: 256 slots plus an occupancy bitmap for O(1) scans to the
/// next non-empty slot.
#[derive(Debug)]
struct Level {
    occupied: [u64; SLOTS / 64],
    slots: [Vec<Scheduled>; SLOTS],
}

impl Level {
    fn new() -> Self {
        Self {
            occupied: [0; SLOTS / 64],
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1 << (slot & 63);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1 << (slot & 63));
    }

    /// First occupied slot with index `>= from`, scanning the bitmap words.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut word_idx = from >> 6;
        let mut word = self.occupied[word_idx] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((word_idx << 6) + word.trailing_zeros() as usize);
            }
            word_idx += 1;
            if word_idx == SLOTS / 64 {
                return None;
            }
            word = self.occupied[word_idx];
        }
    }
}

/// Priority queue of internal events ordered by `(time, push order)`.
///
/// Implemented as a hierarchical timing wheel (see the module docs); the
/// public API and the pop order are exactly those of the binary-heap queue
/// it replaced.
#[derive(Debug)]
pub struct EventQueue {
    /// Internal cursor: a lower bound on every pending wheel/overflow event.
    /// Advances monotonically as events pop; never exceeds the time of a
    /// pending event.
    now: u64,
    /// Global push counter used as the FIFO tie-break.
    seq: u64,
    /// Total pending events across batch, wheel, overdue, and overflow.
    len: usize,
    levels: Box<[Level; LEVELS]>,
    /// The level-0 slot currently being drained: all entries share one
    /// timestamp (== `now`) and are sorted by `seq`. `batch_pos` is the next
    /// entry to pop; same-timestamp pushes append (their seq is larger).
    batch: Vec<Scheduled>,
    batch_pos: usize,
    /// Events pushed with a time before the cursor; they always pop first.
    /// The engine never schedules into the past, so this stays empty in
    /// simulation runs.
    overdue: BinaryHeap<Scheduled>,
    /// Events beyond the wheel horizon, migrated inward lazily.
    overflow: BinaryHeap<Scheduled>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            now: 0,
            seq: 0,
            len: 0,
            levels: Box::new(std::array::from_fn(|_| Level::new())),
            batch: Vec::new(),
            batch_pos: 0,
            overdue: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
        }
    }

    /// Schedules an event at the given absolute time.
    pub fn push(&mut self, time_ms: u64, event: Event) {
        self.seq += 1;
        let sch = Scheduled {
            time_ms,
            seq: self.seq,
            event,
        };
        self.len += 1;
        if time_ms < self.now {
            self.overdue.push(sch);
        } else if time_ms == self.now && self.batch_pos < self.batch.len() {
            // The active batch holds exactly the events due at `now`; seq is
            // monotonic, so appending preserves its sorted-by-seq order.
            self.batch.push(sch);
        } else {
            self.place(sch);
        }
    }

    /// Files an event (at or after the cursor) into the wheel or overflow.
    #[inline]
    fn place(&mut self, sch: Scheduled) {
        let diff = sch.time_ms ^ self.now;
        if diff >> WHEEL_BITS != 0 {
            self.overflow.push(sch);
            return;
        }
        // Level of the highest differing bit: each slot then holds exactly
        // one granule of the current window, so scans never wrap.
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) as usize / 8
        };
        let slot = ((sch.time_ms >> (8 * level)) & 0xFF) as usize;
        self.levels[level].slots[slot].push(sch);
        self.levels[level].mark(slot);
    }

    /// Ensures `batch[batch_pos]` is the earliest pending wheel/overflow
    /// event, cascading higher levels downward as needed. Returns `false`
    /// when nothing (outside `overdue`) is pending.
    fn prepare_batch(&mut self) -> bool {
        if self.batch_pos < self.batch.len() {
            return true;
        }
        loop {
            // Migrate overflow entries that now fall inside the horizon.
            while let Some(top) = self.overflow.peek() {
                if (top.time_ms ^ self.now) >> WHEEL_BITS != 0 {
                    break;
                }
                let sch = self.overflow.pop().expect("peeked");
                self.place(sch);
            }
            // Level 0: exact-millisecond slots of the current 256 ms window.
            if let Some(slot) = self.levels[0].next_occupied((self.now & 0xFF) as usize) {
                self.now = (self.now & !0xFF) | slot as u64;
                let mut due = std::mem::take(&mut self.levels[0].slots[slot]);
                self.levels[0].clear(slot);
                // One sort per distinct timestamp: the whole same-ms burst
                // is then popped by cursor increment.
                due.sort_unstable_by_key(|s| s.seq);
                self.batch.clear();
                std::mem::swap(&mut self.batch, &mut due);
                // Hand the batch's old allocation back to the emptied slot,
                // unless it ballooned past the retention cap.
                if due.capacity() <= SLOT_KEEP_CAP {
                    self.levels[0].slots[slot] = due;
                }
                self.batch_pos = 0;
                return true;
            }
            // Higher levels: cascade the first occupied slot down one or
            // more levels. Advancing the cursor to the slot's granule start
            // is safe — every lower level and earlier slot is empty, so no
            // pending event precedes it.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let cursor = ((self.now >> (8 * level)) & 0xFF) as usize;
                let Some(slot) = self.levels[level].next_occupied(cursor) else {
                    continue;
                };
                let granule = 1u64 << (8 * level);
                let window = self.now & !((granule << 8) - 1);
                let start = window + slot as u64 * granule;
                self.now = self.now.max(start);
                let mut pending = std::mem::take(&mut self.levels[level].slots[slot]);
                self.levels[level].clear(slot);
                for sch in pending.drain(..) {
                    // Relative to the advanced cursor every entry differs
                    // only below this level's bits: strictly descends.
                    self.place(sch);
                }
                if pending.capacity() <= SLOT_KEEP_CAP {
                    self.levels[level].slots[slot] = pending;
                }
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel fully drained: jump the cursor to the earliest
            // far-future event; the migration above files it next round.
            match self.overflow.peek() {
                Some(top) => self.now = top.time_ms,
                None => return false,
            }
        }
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        // Overdue events precede the cursor, which bounds everything else.
        if let Some(top) = self.overdue.peek() {
            return Some(top.time_ms);
        }
        if self.batch_pos < self.batch.len() {
            return Some(self.batch[self.batch_pos].time_ms);
        }
        // A level-0 slot's index *is* its time within the current window.
        if let Some(slot) = self.levels[0].next_occupied((self.now & 0xFF) as usize) {
            return Some((self.now & !0xFF) | slot as u64);
        }
        // The first occupied slot of the lowest non-empty level holds the
        // globally earliest events; scan it for the minimum.
        for level in 1..LEVELS {
            let cursor = ((self.now >> (8 * level)) & 0xFF) as usize;
            if let Some(slot) = self.levels[level].next_occupied(cursor) {
                return self.levels[level].slots[slot]
                    .iter()
                    .map(|s| s.time_ms)
                    .min();
            }
        }
        self.overflow.peek().map(|s| s.time_ms)
    }

    /// Pops the next event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        if let Some(&top) = self.overdue.peek() {
            self.overdue.pop();
            self.len -= 1;
            return Some((top.time_ms, top.event));
        }
        if !self.prepare_batch() {
            return None;
        }
        let sch = self.batch[self.batch_pos];
        self.batch_pos += 1;
        self.len -= 1;
        Some((sch.time_ms, sch.event))
    }

    /// Pops the next event only if it is due at or before `time_ms`.
    ///
    /// A single conditional pop: the due batch is located once and the
    /// deadline checked on it directly, instead of the peek-then-pop double
    /// descent the old heap paid.
    pub fn pop_due(&mut self, time_ms: u64) -> Option<(u64, Event)> {
        if let Some(&top) = self.overdue.peek() {
            if top.time_ms > time_ms {
                return None;
            }
            self.overdue.pop();
            self.len -= 1;
            return Some((top.time_ms, top.event));
        }
        if !self.prepare_batch() || self.batch[self.batch_pos].time_ms > time_ms {
            return None;
        }
        let sch = self.batch[self.batch_pos];
        self.batch_pos += 1;
        self.len -= 1;
        Some((sch.time_ms, sch.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::PrewarmTick);
        q.push(10, Event::PrewarmTick);
        q.push(
            20,
            Event::RequestComplete {
                pod: PodIdx::new(1),
                busy_ms: 5,
            },
        );
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for pod in 1..=3 {
            q.push(
                5,
                Event::PodExpire {
                    pod: PodIdx::new(pod),
                    generation: 0,
                },
            );
        }
        let pods: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::PodExpire { pod, .. } => pod.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pods, vec![1, 2, 3]);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(100, Event::PrewarmTick);
        q.push(50, Event::PrewarmTick);
        assert_eq!(q.peek_time(), Some(50));
        assert!(q.pop_due(40).is_none());
        assert_eq!(q.pop_due(60).unwrap().0, 50);
        assert!(q.pop_due(60).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(100).unwrap().0, 100);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.pop_due(1000).is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cross_level_and_overflow_events_keep_time_order() {
        let mut q = EventQueue::new();
        // One event per wheel level plus one past the 2^32 ms horizon.
        let times = [
            3u64,                  // level 0
            7_000,                 // level 1
            3_000_000,             // level 2
            900_000_000,           // level 3
            (1u64 << 32) + 12_345, // overflow
        ];
        for (i, &t) in times.iter().rev().enumerate() {
            q.push(
                t,
                Event::PodExpire {
                    pod: PodIdx::new(i as u32),
                    generation: 0,
                },
            );
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(popped, times);
    }

    #[test]
    fn same_timestamp_burst_drains_fifo_in_one_batch() {
        let mut q = EventQueue::new();
        // A keep-alive expiry storm: hundreds of co-scheduled events, pushed
        // interleaved with events at other times.
        q.push(59_999, Event::PrewarmTick);
        for pod in 0..300u32 {
            q.push(
                60_000,
                Event::PodExpire {
                    pod: PodIdx::new(pod),
                    generation: 0,
                },
            );
        }
        q.push(60_001, Event::PrewarmTick);
        assert_eq!(q.pop().unwrap().0, 59_999);
        for pod in 0..300u32 {
            let (t, e) = q.pop().unwrap();
            assert_eq!(t, 60_000);
            assert_eq!(
                e,
                Event::PodExpire {
                    pod: PodIdx::new(pod),
                    generation: 0
                }
            );
        }
        assert_eq!(q.pop().unwrap().0, 60_001);
        assert!(q.is_empty());
    }

    #[test]
    fn pushes_behind_the_cursor_pop_first() {
        let mut q = EventQueue::new();
        q.push(1_000_000, Event::PrewarmTick);
        // pop_due advances the internal cursor to the next pending event
        // even when it is past the deadline...
        assert!(q.pop_due(10).is_none());
        // ...so a later push at a smaller time lands behind the cursor and
        // must still pop in correct time order.
        q.push(500, Event::PrewarmTick);
        q.push(600, Event::PrewarmTick);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![500, 600, 1_000_000]);
    }

    #[test]
    fn same_time_push_while_batch_is_draining_stays_fifo() {
        let mut q = EventQueue::new();
        q.push(42, Event::PrewarmTick);
        q.push(42, Event::PrewarmTick);
        assert_eq!(q.pop().unwrap(), (42, Event::PrewarmTick));
        // The batch at t=42 is active; a same-timestamp push joins it at
        // the back (it has the largest seq).
        q.push(
            42,
            Event::PodExpire {
                pod: PodIdx::new(9),
                generation: 1,
            },
        );
        assert_eq!(q.pop().unwrap(), (42, Event::PrewarmTick));
        assert_eq!(
            q.pop().unwrap(),
            (
                42,
                Event::PodExpire {
                    pod: PodIdx::new(9),
                    generation: 1
                }
            )
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_all_stores() {
        let mut q = EventQueue::new();
        q.push(1, Event::PrewarmTick);
        q.push(70_000, Event::PrewarmTick);
        q.push(1 << 40, Event::PrewarmTick);
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }
}

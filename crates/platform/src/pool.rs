//! Per-configuration resource pools of inactive pods.
//!
//! The platform keeps pools of pre-created, code-less pods for each standard
//! CPU–memory configuration (Section 2.2). A cold start first tries to take a
//! pod from the matching pool; if the pool is empty (or the runtime has no
//! reserved pool at all, as with `Custom` images) the pod is created from
//! scratch, which is substantially slower. Pools are replenished in the
//! background towards a target size, which the resource-pool-prediction
//! policy can adjust over time.

use serde::{Deserialize, Serialize};

use fntrace::ResourceConfig;

/// Static pool configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Target number of idle pods kept per standard configuration.
    pub target_per_config: u32,
    /// How many pods can be added to each pool per replenish tick.
    pub replenish_per_tick: u32,
    /// Replenish interval in milliseconds.
    pub replenish_interval_ms: u64,
    /// Multiplier applied to the sampled pod-allocation time when a pod has
    /// to be created from scratch because the pool was empty.
    pub scratch_allocation_multiplier: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            target_per_config: 8,
            replenish_per_tick: 2,
            replenish_interval_ms: 60_000,
            scratch_allocation_multiplier: 4.0,
        }
    }
}

/// Outcome of trying to acquire a pod from the pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolAcquire {
    /// A pooled pod was available.
    FromPool,
    /// The pool was empty (or not maintained); the pod is created from
    /// scratch and pays the slower allocation path.
    FromScratch,
}

/// One pool: a resource configuration with its idle count and replenish
/// target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PoolEntry {
    cfg: ResourceConfig,
    idle: u32,
    target: u32,
}

/// Idle-pod pools, one per resource configuration.
///
/// There are only a handful of configurations (the four standard ones plus
/// any added by [`set_target`](Self::set_target)), so the pools live in a
/// small `Vec` scanned linearly — cheaper than hashing on the cold-start
/// path and allocation-free on the replenish tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourcePools {
    config: PoolConfig,
    entries: Vec<PoolEntry>,
    /// Cumulative counters for reporting.
    acquired_from_pool: u64,
    acquired_from_scratch: u64,
    /// Last time the idle-memory integral was advanced, milliseconds.
    integrated_to_ms: u64,
    /// Integral of pooled idle memory over time, in MB-milliseconds.
    idle_mem_mb_ms: f64,
}

impl ResourcePools {
    /// Creates pools at their target sizes for the standard configurations.
    pub fn new(config: PoolConfig) -> Self {
        let entries = ResourceConfig::STANDARD
            .into_iter()
            .map(|cfg| PoolEntry {
                cfg,
                idle: config.target_per_config,
                target: config.target_per_config,
            })
            .collect();
        Self {
            config,
            entries,
            acquired_from_pool: 0,
            acquired_from_scratch: 0,
            integrated_to_ms: 0,
            idle_mem_mb_ms: 0.0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    fn entry(&self, cfg: ResourceConfig) -> Option<&PoolEntry> {
        self.entries.iter().find(|e| e.cfg == cfg)
    }

    fn entry_mut(&mut self, cfg: ResourceConfig) -> Option<&mut PoolEntry> {
        self.entries.iter_mut().find(|e| e.cfg == cfg)
    }

    /// Number of idle pods currently pooled for a configuration.
    pub fn idle_count(&self, cfg: ResourceConfig) -> u32 {
        self.entry(cfg).map(|e| e.idle).unwrap_or(0)
    }

    /// Current replenish target for a configuration.
    pub fn target(&self, cfg: ResourceConfig) -> u32 {
        self.entry(cfg).map(|e| e.target).unwrap_or(0)
    }

    /// Sets the replenish target for a configuration (used by the
    /// resource-pool-prediction policy).
    pub fn set_target(&mut self, cfg: ResourceConfig, target: u32) {
        match self.entry_mut(cfg) {
            Some(entry) => entry.target = target,
            None => self.entries.push(PoolEntry {
                cfg,
                idle: 0,
                target,
            }),
        }
    }

    /// Advances the idle-memory integral to `now_ms`. Called automatically by
    /// [`acquire`](Self::acquire) and [`replenish`](Self::replenish); the
    /// simulation engine calls it once more at the horizon so the integral
    /// covers the full run. Time never goes backwards: stale timestamps are
    /// ignored.
    pub fn integrate_to(&mut self, now_ms: u64) {
        if now_ms <= self.integrated_to_ms {
            return;
        }
        let dt_ms = (now_ms - self.integrated_to_ms) as f64;
        let idle_mb: f64 = self
            .entries
            .iter()
            .map(|e| f64::from(e.cfg.memory_mb) * f64::from(e.idle))
            .sum();
        self.idle_mem_mb_ms += idle_mb * dt_ms;
        self.integrated_to_ms = now_ms;
    }

    /// Memory reserved by pooled idle pods integrated over time, in
    /// GB-seconds, up to the last [`integrate_to`](Self::integrate_to) point.
    pub fn mem_gb_s(&self) -> f64 {
        self.idle_mem_mb_ms / 1024.0 / 1e3
    }

    /// Tries to acquire a pod of the given configuration at `now_ms`.
    ///
    /// `pooled_runtime` is false for runtimes without reserved pools
    /// (`Custom` images), which always take the from-scratch path.
    pub fn acquire(
        &mut self,
        cfg: ResourceConfig,
        pooled_runtime: bool,
        now_ms: u64,
    ) -> PoolAcquire {
        self.integrate_to(now_ms);
        if pooled_runtime {
            if let Some(entry) = self.entry_mut(cfg) {
                if entry.idle > 0 {
                    entry.idle -= 1;
                    self.acquired_from_pool += 1;
                    return PoolAcquire::FromPool;
                }
            }
        }
        self.acquired_from_scratch += 1;
        PoolAcquire::FromScratch
    }

    /// Runs one replenish tick at `now_ms`, adding up to `replenish_per_tick`
    /// pods to each pool that is below target. Returns how many pods were
    /// created.
    pub fn replenish(&mut self, now_ms: u64) -> u32 {
        self.integrate_to(now_ms);
        let per_tick = self.config.replenish_per_tick;
        let mut created = 0;
        for entry in &mut self.entries {
            if entry.idle < entry.target {
                let add = (entry.target - entry.idle).min(per_tick);
                entry.idle += add;
                created += add;
            }
        }
        created
    }

    /// The pools' current idle counts by configuration, in entry order.
    ///
    /// This is the per-epoch snapshot shard engines draw against (see
    /// [`crate::shard`]); indices into the returned vector align with the
    /// draw totals [`apply_draws`](Self::apply_draws) consumes.
    pub fn snapshot_idle(&self) -> Vec<(ResourceConfig, u32)> {
        self.entries.iter().map(|e| (e.cfg, e.idle)).collect()
    }

    /// Settles one epoch's pod draws against the pools at `now_ms`.
    ///
    /// `draws` holds the per-entry totals accumulated by the shard engines
    /// during the epoch, aligned with [`snapshot_idle`](Self::snapshot_idle).
    /// Each entry is clamped at zero: shards draw against the epoch-start
    /// snapshot, so their combined optimistic draws may exceed what was
    /// actually pooled — the surplus is simply absorbed (the oversubscription
    /// is the documented epoch-granularity approximation). The idle-memory
    /// integral is advanced to `now_ms` first, so the epoch is charged at the
    /// snapshot level the shards actually saw.
    pub fn apply_draws(&mut self, now_ms: u64, draws: &[u64]) {
        self.integrate_to(now_ms);
        for (entry, &drawn) in self.entries.iter_mut().zip(draws) {
            let drawn = u32::try_from(drawn).unwrap_or(u32::MAX);
            entry.idle -= drawn.min(entry.idle);
        }
    }

    /// Runs `times` replenish ticks' worth of refill in one call at `now_ms`.
    ///
    /// Equivalent to `times` consecutive [`replenish`](Self::replenish)
    /// calls except that the idle-memory integral is advanced once at
    /// `now_ms` instead of stepwise — the form the epoch-quantized engine
    /// uses when several replenish intervals elapse within one epoch.
    pub fn replenish_times(&mut self, now_ms: u64, times: u64) -> u32 {
        self.integrate_to(now_ms);
        let budget = self
            .config
            .replenish_per_tick
            .saturating_mul(u32::try_from(times).unwrap_or(u32::MAX));
        let mut created = 0;
        for entry in &mut self.entries {
            if entry.idle < entry.target {
                let add = (entry.target - entry.idle).min(budget);
                entry.idle += add;
                created += add;
            }
        }
        created
    }

    /// Total pods handed out from pools so far.
    pub fn pool_hits(&self) -> u64 {
        self.acquired_from_pool
    }

    /// Total pods created from scratch so far.
    pub fn scratch_creations(&self) -> u64 {
        self.acquired_from_scratch
    }

    /// Total idle pods across all pools (a measure of reserved capacity).
    pub fn total_idle(&self) -> u32 {
        self.entries.iter().map(|e| e.idle).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_start_at_target() {
        let pools = ResourcePools::new(PoolConfig::default());
        for cfg in ResourceConfig::STANDARD {
            assert_eq!(pools.idle_count(cfg), 8);
            assert_eq!(pools.target(cfg), 8);
        }
        assert_eq!(pools.idle_count(ResourceConfig::new(2000, 4096)), 0);
        assert_eq!(pools.total_idle(), 32);
    }

    #[test]
    fn acquire_drains_then_falls_back_to_scratch() {
        let mut pools = ResourcePools::new(PoolConfig {
            target_per_config: 2,
            ..PoolConfig::default()
        });
        let cfg = ResourceConfig::SMALL_300_128;
        assert_eq!(pools.acquire(cfg, true, 0), PoolAcquire::FromPool);
        assert_eq!(pools.acquire(cfg, true, 0), PoolAcquire::FromPool);
        assert_eq!(pools.acquire(cfg, true, 0), PoolAcquire::FromScratch);
        assert_eq!(pools.pool_hits(), 2);
        assert_eq!(pools.scratch_creations(), 1);
        // Non-standard configurations have no pool.
        assert_eq!(
            pools.acquire(ResourceConfig::new(2000, 4096), true, 0),
            PoolAcquire::FromScratch
        );
    }

    #[test]
    fn custom_runtimes_never_use_pools() {
        let mut pools = ResourcePools::new(PoolConfig::default());
        let cfg = ResourceConfig::SMALL_300_128;
        assert_eq!(pools.acquire(cfg, false, 0), PoolAcquire::FromScratch);
        assert_eq!(pools.idle_count(cfg), 8, "pool is untouched");
    }

    #[test]
    fn idle_memory_integral_tracks_pool_contents() {
        let mut pools = ResourcePools::new(PoolConfig {
            target_per_config: 1,
            ..PoolConfig::default()
        });
        // One pod of each standard configuration idles for 1024 seconds:
        // (128 + 256 + 512 + 1024) MB * 1024 s / 1024 MB/GB = 1920 GB-s.
        pools.integrate_to(1_024_000);
        assert!((pools.mem_gb_s() - 1_920.0).abs() < 1e-9);
        // Time never runs backwards.
        pools.integrate_to(500_000);
        assert!((pools.mem_gb_s() - 1_920.0).abs() < 1e-9);
        // Draining the small pool stops its contribution.
        pools.acquire(ResourceConfig::SMALL_300_128, true, 1_024_000);
        pools.integrate_to(2_048_000);
        let expected = 1_920.0 + (256.0 + 512.0 + 1024.0);
        assert!((pools.mem_gb_s() - expected).abs() < 1e-9);
    }

    #[test]
    fn replenish_moves_towards_target() {
        let mut pools = ResourcePools::new(PoolConfig {
            target_per_config: 4,
            replenish_per_tick: 1,
            ..PoolConfig::default()
        });
        let cfg = ResourceConfig::MEDIUM_400_256;
        for _ in 0..4 {
            pools.acquire(cfg, true, 0);
        }
        assert_eq!(pools.idle_count(cfg), 0);
        assert_eq!(pools.replenish(0), 1);
        assert_eq!(pools.idle_count(cfg), 1);
        // Replenish never exceeds the target.
        for _ in 0..10 {
            pools.replenish(0);
        }
        assert_eq!(pools.idle_count(cfg), 4);
    }

    #[test]
    fn set_target_affects_replenish() {
        let mut pools = ResourcePools::new(PoolConfig {
            target_per_config: 1,
            replenish_per_tick: 10,
            ..PoolConfig::default()
        });
        let cfg = ResourceConfig::SMALL_300_128;
        pools.set_target(cfg, 6);
        assert_eq!(pools.target(cfg), 6);
        pools.replenish(0);
        assert_eq!(pools.idle_count(cfg), 6);
        // Lowering the target does not delete pods, but stops replenishment.
        pools.set_target(cfg, 2);
        pools.acquire(cfg, true, 0);
        pools.acquire(cfg, true, 0);
        pools.acquire(cfg, true, 0);
        pools.acquire(cfg, true, 0);
        pools.acquire(cfg, true, 0);
        assert_eq!(pools.idle_count(cfg), 1);
        pools.replenish(0);
        assert_eq!(pools.idle_count(cfg), 2);
    }
}

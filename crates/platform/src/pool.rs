//! Per-configuration resource pools of inactive pods.
//!
//! The platform keeps pools of pre-created, code-less pods for each standard
//! CPU–memory configuration (Section 2.2). A cold start first tries to take a
//! pod from the matching pool; if the pool is empty (or the runtime has no
//! reserved pool at all, as with `Custom` images) the pod is created from
//! scratch, which is substantially slower. Pools are replenished in the
//! background towards a target size, which the resource-pool-prediction
//! policy can adjust over time.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use fntrace::ResourceConfig;

/// Static pool configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Target number of idle pods kept per standard configuration.
    pub target_per_config: u32,
    /// How many pods can be added to each pool per replenish tick.
    pub replenish_per_tick: u32,
    /// Replenish interval in milliseconds.
    pub replenish_interval_ms: u64,
    /// Multiplier applied to the sampled pod-allocation time when a pod has
    /// to be created from scratch because the pool was empty.
    pub scratch_allocation_multiplier: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            target_per_config: 8,
            replenish_per_tick: 2,
            replenish_interval_ms: 60_000,
            scratch_allocation_multiplier: 4.0,
        }
    }
}

/// Outcome of trying to acquire a pod from the pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolAcquire {
    /// A pooled pod was available.
    FromPool,
    /// The pool was empty (or not maintained); the pod is created from
    /// scratch and pays the slower allocation path.
    FromScratch,
}

/// Idle-pod pools keyed by resource configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourcePools {
    config: PoolConfig,
    idle: HashMap<ResourceConfig, u32>,
    targets: HashMap<ResourceConfig, u32>,
    /// Cumulative counters for reporting.
    acquired_from_pool: u64,
    acquired_from_scratch: u64,
}

impl ResourcePools {
    /// Creates pools at their target sizes for the standard configurations.
    pub fn new(config: PoolConfig) -> Self {
        let mut idle = HashMap::new();
        let mut targets = HashMap::new();
        for cfg in ResourceConfig::STANDARD {
            idle.insert(cfg, config.target_per_config);
            targets.insert(cfg, config.target_per_config);
        }
        Self {
            config,
            idle,
            targets,
            acquired_from_pool: 0,
            acquired_from_scratch: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Number of idle pods currently pooled for a configuration.
    pub fn idle_count(&self, cfg: ResourceConfig) -> u32 {
        self.idle.get(&cfg).copied().unwrap_or(0)
    }

    /// Current replenish target for a configuration.
    pub fn target(&self, cfg: ResourceConfig) -> u32 {
        self.targets.get(&cfg).copied().unwrap_or(0)
    }

    /// Sets the replenish target for a configuration (used by the
    /// resource-pool-prediction policy).
    pub fn set_target(&mut self, cfg: ResourceConfig, target: u32) {
        self.targets.insert(cfg, target);
        self.idle.entry(cfg).or_insert(0);
    }

    /// Tries to acquire a pod of the given configuration.
    ///
    /// `pooled_runtime` is false for runtimes without reserved pools
    /// (`Custom` images), which always take the from-scratch path.
    pub fn acquire(&mut self, cfg: ResourceConfig, pooled_runtime: bool) -> PoolAcquire {
        if pooled_runtime {
            if let Some(count) = self.idle.get_mut(&cfg) {
                if *count > 0 {
                    *count -= 1;
                    self.acquired_from_pool += 1;
                    return PoolAcquire::FromPool;
                }
            }
        }
        self.acquired_from_scratch += 1;
        PoolAcquire::FromScratch
    }

    /// Runs one replenish tick, adding up to `replenish_per_tick` pods to
    /// each pool that is below target. Returns how many pods were created.
    pub fn replenish(&mut self) -> u32 {
        let mut created = 0;
        for (cfg, target) in self.targets.clone() {
            let entry = self.idle.entry(cfg).or_insert(0);
            if *entry < target {
                let add = (target - *entry).min(self.config.replenish_per_tick);
                *entry += add;
                created += add;
            }
        }
        created
    }

    /// Total pods handed out from pools so far.
    pub fn pool_hits(&self) -> u64 {
        self.acquired_from_pool
    }

    /// Total pods created from scratch so far.
    pub fn scratch_creations(&self) -> u64 {
        self.acquired_from_scratch
    }

    /// Total idle pods across all pools (a measure of reserved capacity).
    pub fn total_idle(&self) -> u32 {
        self.idle.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_start_at_target() {
        let pools = ResourcePools::new(PoolConfig::default());
        for cfg in ResourceConfig::STANDARD {
            assert_eq!(pools.idle_count(cfg), 8);
            assert_eq!(pools.target(cfg), 8);
        }
        assert_eq!(pools.idle_count(ResourceConfig::new(2000, 4096)), 0);
        assert_eq!(pools.total_idle(), 32);
    }

    #[test]
    fn acquire_drains_then_falls_back_to_scratch() {
        let mut pools = ResourcePools::new(PoolConfig {
            target_per_config: 2,
            ..PoolConfig::default()
        });
        let cfg = ResourceConfig::SMALL_300_128;
        assert_eq!(pools.acquire(cfg, true), PoolAcquire::FromPool);
        assert_eq!(pools.acquire(cfg, true), PoolAcquire::FromPool);
        assert_eq!(pools.acquire(cfg, true), PoolAcquire::FromScratch);
        assert_eq!(pools.pool_hits(), 2);
        assert_eq!(pools.scratch_creations(), 1);
        // Non-standard configurations have no pool.
        assert_eq!(
            pools.acquire(ResourceConfig::new(2000, 4096), true),
            PoolAcquire::FromScratch
        );
    }

    #[test]
    fn custom_runtimes_never_use_pools() {
        let mut pools = ResourcePools::new(PoolConfig::default());
        let cfg = ResourceConfig::SMALL_300_128;
        assert_eq!(pools.acquire(cfg, false), PoolAcquire::FromScratch);
        assert_eq!(pools.idle_count(cfg), 8, "pool is untouched");
    }

    #[test]
    fn replenish_moves_towards_target() {
        let mut pools = ResourcePools::new(PoolConfig {
            target_per_config: 4,
            replenish_per_tick: 1,
            ..PoolConfig::default()
        });
        let cfg = ResourceConfig::MEDIUM_400_256;
        for _ in 0..4 {
            pools.acquire(cfg, true);
        }
        assert_eq!(pools.idle_count(cfg), 0);
        assert_eq!(pools.replenish(), 1);
        assert_eq!(pools.idle_count(cfg), 1);
        // Replenish never exceeds the target.
        for _ in 0..10 {
            pools.replenish();
        }
        assert_eq!(pools.idle_count(cfg), 4);
    }

    #[test]
    fn set_target_affects_replenish() {
        let mut pools = ResourcePools::new(PoolConfig {
            target_per_config: 1,
            replenish_per_tick: 10,
            ..PoolConfig::default()
        });
        let cfg = ResourceConfig::SMALL_300_128;
        pools.set_target(cfg, 6);
        assert_eq!(pools.target(cfg), 6);
        pools.replenish();
        assert_eq!(pools.idle_count(cfg), 6);
        // Lowering the target does not delete pods, but stops replenishment.
        pools.set_target(cfg, 2);
        pools.acquire(cfg, true);
        pools.acquire(cfg, true);
        pools.acquire(cfg, true);
        pools.acquire(cfg, true);
        pools.acquire(cfg, true);
        assert_eq!(pools.idle_count(cfg), 1);
        pools.replenish();
        assert_eq!(pools.idle_count(cfg), 2);
    }
}

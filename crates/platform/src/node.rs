//! Node-level cluster fidelity: per-node image caches, placement, and pull
//! contention.
//!
//! The paper decomposes cold starts into component times — image/layer pull,
//! pod scheduling and creation, runtime init — and shows the pull component
//! collapsing to near zero when the node already caches the function's
//! dependency layers. This module models that: each cluster is backed by a
//! deterministic set of **nodes** ([`NodePool`]), each with a pod capacity,
//! a pull bandwidth, and an LRU image/layer cache keyed by the function's
//! dependency layer. A [`PlacementPolicy`] picks the node for every new pod,
//! *extending* the cluster routing of [`crate::cluster`] rather than
//! replacing it; the dependency-deployment component of a cold start then
//! becomes an explicit layer-pull time — zero on a cache hit,
//! bandwidth-shared when many concurrent pulls hit one node.
//!
//! # Epoch-merge contract
//!
//! Node and cache state are shared mutable state exactly like the resource
//! pools, so they join the epoch-reconciliation protocol of
//! [`crate::shard`]:
//!
//! * Shards observe node state only through the epoch-start
//!   [`NodeSnapshot`]: per-node pod counts, pull pressure, and a sorted
//!   cache-membership view.
//! * Within an epoch a function sees its **own** placements and pulls
//!   immediately (tracked shard-locally, like the pool-draw budget) but
//!   other functions' activity only from the next boundary on — the same
//!   documented epoch-granularity approximation the pools use.
//! * Each shard's contribution is a commutative [`NodeDelta`]: per-node pod
//!   deltas (sums) and the epoch's pull records. At the boundary the
//!   authoritative [`NodePool`] sums the pod deltas and applies the pulls to
//!   the LRU caches in `(time, node, layer)` order — a total order over
//!   distinct records, so the merged cache state is independent of the shard
//!   count and `run_sharded` stays byte-identical to `run_streamed`.
//!
//! Placement itself is a pure function of the snapshot, the function id,
//! and the function's own within-epoch placements — seeded state only, no
//! RNG — which is the other half of the shard-invariance argument.

use serde::{Deserialize, Serialize};

use fntrace::{ClusterId, FunctionId};

use crate::cluster::ClusterState;

/// Concurrent pulls beyond this share the node's bandwidth as if exactly
/// this many were running: pull pressure is an epoch-granular proxy for
/// instantaneous concurrency, and an unbounded multiplier would let one
/// 60-second pull storm charge hour-long pulls.
pub const MAX_PULL_SHARE: u32 = 64;

/// Identifies one function's dependency-layer image in a node cache.
///
/// Derived from the function id through a SplitMix64 finalizer so layer keys
/// are spread over the full 64-bit space whatever shape the function ids
/// have (hashed names or small test integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerKey(u64);

impl LayerKey {
    /// The dependency-layer key of a function.
    pub fn of(function: FunctionId) -> Self {
        let mut z = function.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self(z ^ (z >> 31))
    }
}

/// Hardware class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeClass {
    /// Pods the node nominally hosts; a soft limit — placement prefers
    /// nodes under it but never rejects a pod (see [`PlacementPolicy`]).
    pub capacity_pods: u32,
    /// Image-pull bandwidth in MB/s, shared among concurrent pulls.
    pub pull_bandwidth_mbps: u64,
    /// Dependency layers the node's image cache retains (LRU beyond that).
    pub cache_layers: u32,
}

/// How the node for a new pod is chosen. Every policy is a pure function of
/// the epoch-start snapshot, the function id, and the function's own
/// within-epoch placements, so placement is byte-deterministic at every
/// shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Route through [`ClusterState::place_pod`] (home cluster with the
    /// deterministic hot-spot fallback), then the least-loaded node of that
    /// cluster; ties break toward the lowest node index.
    HomeClusterAffine,
    /// The least-loaded node region-wide; ties rotate over the tied set by
    /// `function.raw() % ties` so simultaneous placements spread instead of
    /// herding onto node 0.
    Spread,
    /// The most-loaded node still under its soft capacity (ties toward the
    /// lowest index); falls back to [`Spread`](Self::Spread) when every
    /// node is at or over capacity.
    BinPack,
}

impl PlacementPolicy {
    /// All policies, in deterministic sweep order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::HomeClusterAffine,
        PlacementPolicy::Spread,
        PlacementPolicy::BinPack,
    ];

    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::HomeClusterAffine => "affine",
            PlacementPolicy::Spread => "spread",
            PlacementPolicy::BinPack => "binpack",
        }
    }

    /// Resolves a stable name back to the policy.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Static configuration of the node model. Absent from
/// [`crate::PlatformConfig`] by default: the node layer is opt-in, and with
/// it off the simulator charges the calibrated dependency-deployment sample
/// exactly as before.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeModelConfig {
    /// Node classes per cluster as `(class, count)`; every cluster gets the
    /// same deterministic roster, enumerated cluster-major.
    pub classes_per_cluster: Vec<(NodeClass, u32)>,
    /// Node selection policy.
    pub placement: PlacementPolicy,
    /// Size of one dependency layer in MB — what a cache miss pulls.
    pub layer_size_mb: u64,
    /// Rolling-deploy instant: from the first epoch boundary at or after
    /// this time, node caches are invalidated in rolling batches (a quarter
    /// of the pool per boundary), modelling a deploy that replaces every
    /// function's layers mid-run. `None` disables it.
    pub redeploy_at_ms: Option<u64>,
}

impl Default for NodeModelConfig {
    fn default() -> Self {
        Self {
            classes_per_cluster: vec![(
                NodeClass {
                    capacity_pods: 32,
                    pull_bandwidth_mbps: 200,
                    cache_layers: 16,
                },
                2,
            )],
            placement: PlacementPolicy::HomeClusterAffine,
            layer_size_mb: 64,
            redeploy_at_ms: None,
        }
    }
}

/// Scenario presets the pre-node model could not express. Each is a
/// [`NodeModelConfig`] distortion; pair them with any workload source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeScenario {
    /// Traffic fails over into a region whose node caches hold nothing:
    /// small caches, modest bandwidth, spread placement — the first epochs
    /// are one long pull storm.
    CacheColdFailover,
    /// A deploy six simulated hours in invalidates every cached layer in
    /// rolling batches; warmed-up caches go cold mid-run.
    RollingDeploy,
    /// A mixed pool of small and large nodes under bin-packing: large nodes
    /// absorb most pods (and keep their caches hot), small nodes thrash.
    HeterogeneousPool,
}

impl NodeScenario {
    /// All scenarios, in deterministic order.
    pub const ALL: [NodeScenario; 3] = [
        NodeScenario::CacheColdFailover,
        NodeScenario::RollingDeploy,
        NodeScenario::HeterogeneousPool,
    ];

    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            NodeScenario::CacheColdFailover => "cache-cold-failover",
            NodeScenario::RollingDeploy => "rolling-deploy",
            NodeScenario::HeterogeneousPool => "heterogeneous-pool",
        }
    }

    /// Resolves a stable name back to the scenario.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// One-line description for help output.
    pub fn description(&self) -> &'static str {
        match self {
            NodeScenario::CacheColdFailover => {
                "failover region with cold caches: small caches, modest \
                 bandwidth, spread placement"
            }
            NodeScenario::RollingDeploy => {
                "rolling deploy at six hours invalidates cached layers in \
                 batches"
            }
            NodeScenario::HeterogeneousPool => {
                "mixed small/large node pool under bin-packing placement"
            }
        }
    }

    /// The node-model configuration the scenario runs under.
    pub fn node_config(&self) -> NodeModelConfig {
        match self {
            NodeScenario::CacheColdFailover => NodeModelConfig {
                classes_per_cluster: vec![(
                    NodeClass {
                        capacity_pods: 24,
                        pull_bandwidth_mbps: 100,
                        cache_layers: 4,
                    },
                    2,
                )],
                placement: PlacementPolicy::Spread,
                layer_size_mb: 64,
                redeploy_at_ms: None,
            },
            NodeScenario::RollingDeploy => NodeModelConfig {
                redeploy_at_ms: Some(6 * 3_600_000),
                ..NodeModelConfig::default()
            },
            NodeScenario::HeterogeneousPool => NodeModelConfig {
                classes_per_cluster: vec![
                    (
                        NodeClass {
                            capacity_pods: 8,
                            pull_bandwidth_mbps: 100,
                            cache_layers: 4,
                        },
                        2,
                    ),
                    (
                        NodeClass {
                            capacity_pods: 64,
                            pull_bandwidth_mbps: 400,
                            cache_layers: 32,
                        },
                        1,
                    ),
                ],
                placement: PlacementPolicy::BinPack,
                layer_size_mb: 64,
                redeploy_at_ms: None,
            },
        }
    }

    /// A platform configuration with this scenario's node model enabled on
    /// top of `base`.
    pub fn platform(&self, base: &crate::PlatformConfig) -> crate::PlatformConfig {
        crate::PlatformConfig {
            node: Some(self.node_config()),
            ..base.clone()
        }
    }
}

/// One pull started during an epoch: the boundary merge replays pulls into
/// the authoritative caches in `(time, node, layer)` order — a total order
/// over distinct records (layer keys are per-function), so the merged LRU
/// state cannot depend on shard interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PullRecord {
    /// Simulation time the pull started, milliseconds.
    pub time_ms: u64,
    /// Node the layer was pulled onto.
    pub node: u32,
    /// The layer pulled.
    pub layer: LayerKey,
}

/// One shard's node-state contribution over one epoch. All fields merge
/// commutatively: pod deltas sum, pull records are globally re-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeDelta {
    /// Net live-pod change per node (placements minus finalizations).
    pub pod_delta: Vec<i64>,
    /// Pulls started during the epoch, in shard-local event order.
    pub pulls: Vec<PullRecord>,
}

/// Read-only per-node view shards use during an epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// Cluster the node belongs to.
    pub cluster: ClusterId,
    /// Soft pod capacity (from the node's class).
    pub capacity_pods: u32,
    /// Pull bandwidth in MB/s (from the node's class).
    pub pull_bandwidth_mbps: u64,
    /// Live pods on the node as of the boundary.
    pub pods: u32,
    /// Pulls started on the node during the previous epoch — the
    /// contention proxy for bandwidth sharing.
    pub pressure: u32,
}

/// Node state as of an epoch boundary: plain data, cloned per shard per
/// epoch like the rest of [`crate::shard::EpochSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Per-node boundary state.
    pub nodes: Vec<NodeView>,
    /// Cache membership per node, sorted for binary search.
    caches: Vec<Vec<LayerKey>>,
    /// Layer size every miss pulls, MB.
    pub layer_size_mb: u64,
    /// Placement policy in force.
    pub placement: PlacementPolicy,
}

impl NodeSnapshot {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` cached `layer` as of the boundary.
    pub fn cache_hit(&self, node: u32, layer: LayerKey) -> bool {
        self.caches
            .get(node as usize)
            .is_some_and(|c| c.binary_search(&layer).is_ok())
    }

    /// Pull time for one layer on `node`, microseconds: the layer size over
    /// the node's bandwidth, stretched by the node's (clamped) pull
    /// pressure as a share of `1 + pressure` concurrent pulls.
    pub fn pull_micros(&self, node: u32) -> u64 {
        let view = &self.nodes[node as usize];
        let share = 1 + u64::from(view.pressure.min(MAX_PULL_SHARE - 1));
        self.layer_size_mb * 1_000_000 * share / view.pull_bandwidth_mbps.max(1)
    }

    /// Chooses the node for a new pod of `function`.
    ///
    /// `own` reports the function's *own* placements this epoch per node
    /// (its shard-local budget, invisible to other functions until the next
    /// boundary); the effective load of a node is its snapshot pod count
    /// plus that. Pure in `(self, clusters, function, own)` — no RNG — so
    /// the choice is identical whatever the shard count.
    pub fn choose_node(
        &self,
        function: FunctionId,
        clusters: &ClusterState,
        own: impl Fn(u32) -> u32,
    ) -> u32 {
        debug_assert!(!self.nodes.is_empty(), "node pool has at least one node");
        let load = |i: usize| self.nodes[i].pods + own(i as u32);
        match self.placement {
            PlacementPolicy::HomeClusterAffine => {
                let cluster = clusters.place_pod(function);
                let mut best: Option<(u32, usize)> = None;
                for (i, view) in self.nodes.iter().enumerate() {
                    if view.cluster != cluster {
                        continue;
                    }
                    let l = load(i);
                    if best.is_none_or(|(bl, _)| l < bl) {
                        best = Some((l, i));
                    }
                }
                // A cluster without nodes (possible only with a degenerate
                // roster) falls back to the region-wide spread.
                match best {
                    Some((_, i)) => i as u32,
                    None => self.spread(function, &load),
                }
            }
            PlacementPolicy::Spread => self.spread(function, &load),
            PlacementPolicy::BinPack => {
                let mut best: Option<(u32, usize)> = None;
                for (i, view) in self.nodes.iter().enumerate() {
                    let l = load(i);
                    if l < view.capacity_pods && best.is_none_or(|(bl, _)| l > bl) {
                        best = Some((l, i));
                    }
                }
                match best {
                    Some((_, i)) => i as u32,
                    None => self.spread(function, &load),
                }
            }
        }
    }

    /// Least-loaded node with the documented rotation tie-break.
    fn spread(&self, function: FunctionId, load: &impl Fn(usize) -> u32) -> u32 {
        let least = (0..self.nodes.len()).map(load).min().expect("nodes");
        let ties = (0..self.nodes.len()).filter(|&i| load(i) == least).count() as u64;
        let pick = (function.raw() % ties) as usize;
        (0..self.nodes.len())
            .filter(|&i| load(i) == least)
            .nth(pick)
            .expect("tie exists") as u32
    }
}

/// Authoritative node state, owned by the run's
/// [`EpochLedger`](crate::shard::EpochLedger) and advanced only at epoch
/// boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePool {
    /// `(cluster, class index)` per node, cluster-major enumeration.
    nodes: Vec<(ClusterId, u32)>,
    classes: Vec<NodeClass>,
    /// Live pods per node.
    pods: Vec<u32>,
    /// Cache contents per node, most-recently-used first.
    caches: Vec<Vec<LayerKey>>,
    /// Pulls recorded during the last settled epoch, per node.
    pressure: Vec<u32>,
    layer_size_mb: u64,
    placement: PlacementPolicy,
    redeploy_at_ms: Option<u64>,
    /// Nodes already cache-invalidated by the rolling deploy.
    rolled: u32,
}

impl NodePool {
    /// Builds the deterministic node roster: for each cluster `0..clusters`,
    /// every configured class in declaration order, `count` nodes each.
    pub fn new(config: &NodeModelConfig, clusters: u8) -> Self {
        let classes: Vec<NodeClass> = config
            .classes_per_cluster
            .iter()
            .map(|&(class, _)| class)
            .collect();
        let mut nodes = Vec::new();
        for cluster in 0..clusters.max(1) {
            for (class_idx, &(_, count)) in config.classes_per_cluster.iter().enumerate() {
                for _ in 0..count {
                    nodes.push((ClusterId::from(cluster), class_idx as u32));
                }
            }
        }
        assert!(
            !nodes.is_empty(),
            "node model enabled with an empty node roster"
        );
        let n = nodes.len();
        Self {
            nodes,
            classes,
            pods: vec![0; n],
            caches: vec![Vec::new(); n],
            pressure: vec![0; n],
            layer_size_mb: config.layer_size_mb,
            placement: config.placement,
            redeploy_at_ms: config.redeploy_at_ms,
            rolled: 0,
        }
    }

    /// Number of nodes in the pool.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool has no nodes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The snapshot shards observe until the next boundary.
    pub fn snapshot(&self) -> NodeSnapshot {
        let nodes = self
            .nodes
            .iter()
            .zip(&self.pods)
            .zip(&self.pressure)
            .map(|((&(cluster, class_idx), &pods), &pressure)| {
                let class = &self.classes[class_idx as usize];
                NodeView {
                    cluster,
                    capacity_pods: class.capacity_pods,
                    pull_bandwidth_mbps: class.pull_bandwidth_mbps,
                    pods,
                    pressure,
                }
            })
            .collect();
        let caches = self
            .caches
            .iter()
            .map(|c| {
                let mut sorted = c.clone();
                sorted.sort_unstable();
                sorted
            })
            .collect();
        NodeSnapshot {
            nodes,
            caches,
            layer_size_mb: self.layer_size_mb,
            placement: self.placement,
        }
    }

    /// Settles one boundary: sums the shards' pod deltas (clamped at zero),
    /// replays the epoch's pulls into the LRU caches in `(time, node,
    /// layer)` order, records the per-node pull counts as the next epoch's
    /// pressure, and advances the rolling deploy if one is due.
    pub fn apply<'a>(&mut self, boundary_ms: u64, deltas: impl IntoIterator<Item = &'a NodeDelta>) {
        let mut pod_delta = vec![0i64; self.nodes.len()];
        let mut pulls: Vec<PullRecord> = Vec::new();
        for d in deltas {
            for (acc, &x) in pod_delta.iter_mut().zip(&d.pod_delta) {
                *acc += x;
            }
            pulls.extend_from_slice(&d.pulls);
        }
        for (pods, &d) in self.pods.iter_mut().zip(&pod_delta) {
            let updated = i64::from(*pods) + d;
            *pods = u32::try_from(updated.max(0)).unwrap_or(u32::MAX);
        }
        pulls.sort_unstable();
        self.pressure.fill(0);
        for pull in pulls {
            let node = pull.node as usize;
            if node >= self.nodes.len() {
                continue;
            }
            self.pressure[node] += 1;
            let cache = &mut self.caches[node];
            if let Some(pos) = cache.iter().position(|&l| l == pull.layer) {
                cache.remove(pos);
            }
            cache.insert(0, pull.layer);
            let cap = self.classes[self.nodes[node].1 as usize].cache_layers as usize;
            cache.truncate(cap);
        }
        if let Some(at) = self.redeploy_at_ms {
            if boundary_ms >= at && (self.rolled as usize) < self.nodes.len() {
                // Invalidate a quarter of the pool per boundary, lowest
                // node indices first — the "rolling" in rolling deploy.
                let batch = self.nodes.len().div_ceil(4);
                let end = (self.rolled as usize + batch).min(self.nodes.len());
                for cache in &mut self.caches[self.rolled as usize..end] {
                    cache.clear();
                }
                self.rolled = end as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(config: &NodeModelConfig) -> NodePool {
        NodePool::new(config, 4)
    }

    #[test]
    fn roster_is_cluster_major_and_deterministic() {
        let p = pool(&NodeModelConfig::default());
        // Four clusters x one class x two nodes.
        assert_eq!(p.len(), 8);
        let snap = p.snapshot();
        assert_eq!(snap.len(), 8);
        for (i, view) in snap.nodes.iter().enumerate() {
            assert_eq!(usize::from(view.cluster), i / 2);
            assert_eq!(view.pods, 0);
            assert_eq!(view.pressure, 0);
        }
        assert_eq!(p.snapshot(), p.snapshot());
    }

    #[test]
    fn scenario_names_round_trip() {
        for s in NodeScenario::ALL {
            assert_eq!(NodeScenario::from_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
            assert!(!s.node_config().classes_per_cluster.is_empty());
        }
        assert_eq!(NodeScenario::from_name("nope"), None);
        for p in PlacementPolicy::ALL {
            assert_eq!(PlacementPolicy::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn lru_caches_evict_in_recency_order() {
        let config = NodeModelConfig {
            classes_per_cluster: vec![(
                NodeClass {
                    capacity_pods: 8,
                    pull_bandwidth_mbps: 100,
                    cache_layers: 2,
                },
                1,
            )],
            ..NodeModelConfig::default()
        };
        let mut p = NodePool::new(&config, 1);
        let layer = |id: u64| LayerKey::of(FunctionId::new(id));
        let pull = |t: u64, id: u64| PullRecord {
            time_ms: t,
            node: 0,
            layer: layer(id),
        };
        p.apply(
            60_000,
            [NodeDelta {
                pod_delta: vec![3],
                pulls: vec![pull(1, 1), pull(2, 2), pull(3, 1), pull(4, 3)],
            }]
            .iter(),
        );
        let snap = p.snapshot();
        // Capacity two: layer 2 (pulled at t=2, never touched again) was
        // evicted by layer 3; layer 1 was refreshed at t=3 and survives.
        assert!(snap.cache_hit(0, layer(1)));
        assert!(snap.cache_hit(0, layer(3)));
        assert!(!snap.cache_hit(0, layer(2)));
        assert_eq!(snap.nodes[0].pods, 3);
        assert_eq!(snap.nodes[0].pressure, 4);
        // Pressure resets every epoch; pods clamp at zero.
        p.apply(
            120_000,
            [NodeDelta {
                pod_delta: vec![-9],
                pulls: Vec::new(),
            }]
            .iter(),
        );
        let snap = p.snapshot();
        assert_eq!(snap.nodes[0].pods, 0);
        assert_eq!(snap.nodes[0].pressure, 0);
    }

    #[test]
    fn pull_merge_is_shard_count_invariant() {
        let layer = |id: u64| LayerKey::of(FunctionId::new(id));
        let pulls = vec![
            PullRecord {
                time_ms: 5,
                node: 0,
                layer: layer(1),
            },
            PullRecord {
                time_ms: 9,
                node: 0,
                layer: layer(2),
            },
            PullRecord {
                time_ms: 2,
                node: 1,
                layer: layer(3),
            },
        ];
        let one_shard = {
            let mut p = pool(&NodeModelConfig::default());
            p.apply(
                60_000,
                [NodeDelta {
                    pod_delta: vec![1, 1, 0, 0, 0, 0, 0, 0],
                    pulls: pulls.clone(),
                }]
                .iter(),
            );
            p
        };
        let two_shards = {
            let mut p = pool(&NodeModelConfig::default());
            // The same records split across shards in a different order.
            let deltas = [
                NodeDelta {
                    pod_delta: vec![0, 1, 0, 0, 0, 0, 0, 0],
                    pulls: vec![pulls[2], pulls[1]],
                },
                NodeDelta {
                    pod_delta: vec![1, 0, 0, 0, 0, 0, 0, 0],
                    pulls: vec![pulls[0]],
                },
            ];
            p.apply(60_000, deltas.iter());
            p
        };
        assert_eq!(one_shard, two_shards);
        assert_eq!(one_shard.snapshot(), two_shards.snapshot());
    }

    #[test]
    fn contention_stretches_pulls_and_is_clamped() {
        let mut p = pool(&NodeModelConfig::default());
        let idle = p.snapshot();
        // 64 MB at 200 MB/s with no contention: 320 ms.
        assert_eq!(idle.pull_micros(0), 320_000);
        let storm: Vec<PullRecord> = (0..200)
            .map(|i| PullRecord {
                time_ms: i,
                node: 0,
                layer: LayerKey::of(FunctionId::new(i + 1)),
            })
            .collect();
        p.apply(
            60_000,
            [NodeDelta {
                pod_delta: vec![0; 8],
                pulls: storm,
            }]
            .iter(),
        );
        let hot = p.snapshot();
        assert_eq!(hot.nodes[0].pressure, 200);
        // Clamped at MAX_PULL_SHARE concurrent shares.
        assert_eq!(hot.pull_micros(0), 320_000 * u64::from(MAX_PULL_SHARE));
    }

    #[test]
    fn placement_policies_differ_and_respect_their_contracts() {
        let clusters = ClusterState::new(4, 64);
        let config = NodeModelConfig::default();
        let f = FunctionId::new(5); // Home cluster 1.
        let make = |placement| {
            let mut snap = NodePool::new(&config, 4).snapshot();
            snap.placement = placement;
            // Loads: nodes 0..8, cluster-major pairs.
            for (i, load) in [3, 1, 0, 2, 5, 4, 0, 1].iter().enumerate() {
                snap.nodes[i].pods = *load;
            }
            snap
        };
        let none = |_: u32| 0;
        // Affine: cluster 1 owns nodes 2 and 3; node 2 is lighter.
        let affine = make(PlacementPolicy::HomeClusterAffine);
        assert_eq!(affine.choose_node(f, &clusters, none), 2);
        // Spread: global least load 0 is tied between nodes 2 and 6;
        // function 5 rotates to the second (5 % 2 == 1).
        let spread = make(PlacementPolicy::Spread);
        assert_eq!(spread.choose_node(f, &clusters, none), 6);
        // BinPack: heaviest node under capacity (32) is node 4 at load 5.
        let binpack = make(PlacementPolicy::BinPack);
        assert_eq!(binpack.choose_node(f, &clusters, none), 4);
        // Own placements this epoch count toward load.
        assert_eq!(spread.choose_node(f, &clusters, |n| u32::from(n == 6)), 2);
    }

    #[test]
    fn rolling_deploy_invalidates_in_batches() {
        let config = NodeModelConfig {
            redeploy_at_ms: Some(100_000),
            ..NodeModelConfig::default()
        };
        let mut p = pool(&config); // 8 nodes -> batches of 2.
        let warm: Vec<PullRecord> = (0..8)
            .map(|n| PullRecord {
                time_ms: 1,
                node: n,
                layer: LayerKey::of(FunctionId::new(99)),
            })
            .collect();
        p.apply(
            60_000,
            [NodeDelta {
                pod_delta: vec![0; 8],
                pulls: warm,
            }]
            .iter(),
        );
        let layer = LayerKey::of(FunctionId::new(99));
        let snap = p.snapshot();
        assert!((0..8).all(|n| snap.cache_hit(n, layer)));
        // First boundary past the deploy: nodes 0 and 1 invalidated.
        p.apply(120_000, [].iter());
        let snap = p.snapshot();
        assert!(!snap.cache_hit(0, layer) && !snap.cache_hit(1, layer));
        assert!((2..8).all(|n| snap.cache_hit(n, layer)));
        // Two more boundaries finish the roll.
        p.apply(180_000, [].iter());
        p.apply(240_000, [].iter());
        let snap = p.snapshot();
        assert!((0..6).all(|n| !snap.cache_hit(n, layer)));
        // Batches are ceil(8/4) = 2 per boundary: 6 rolled after three.
        assert!((6..8).all(|n| snap.cache_hit(n, layer)));
        p.apply(300_000, [].iter());
        let snap = p.snapshot();
        assert!((0..8).all(|n| !snap.cache_hit(n, layer)));
    }
}

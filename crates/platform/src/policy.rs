//! Policy extension points: pre-warming and admission control.
//!
//! The mitigation strategies of Section 5 plug into the simulator through two
//! small traits. The platform crate only provides the no-op baselines; the
//! `coldstarts` core crate implements the predictive versions evaluated in
//! the policy-ablation experiments.

use fntrace::{FunctionId, ResourceConfig, Runtime, TriggerType};

/// Read-only view of one function's state exposed to policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionView {
    /// The function.
    pub function: FunctionId,
    /// Runtime language.
    pub runtime: Runtime,
    /// Primary trigger.
    pub trigger: TriggerType,
    /// Resource configuration.
    pub config: ResourceConfig,
    /// Timer period in seconds (0 when not timer-triggered).
    pub timer_period_secs: f64,
    /// Number of currently warm (idle or busy, not terminated) pods.
    pub warm_pods: u32,
    /// Requests observed so far.
    pub arrivals: u64,
    /// Cold starts observed so far.
    pub cold_starts: u64,
    /// Arrivals observed in the most recent policy interval.
    pub recent_arrivals: u64,
    /// Timestamp of the most recent arrival in milliseconds, if any.
    pub last_arrival_ms: Option<u64>,
}

/// Read-only view of the platform state exposed to policies at tick time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformView {
    /// Current simulation time in milliseconds.
    pub now_ms: u64,
    /// Per-function views.
    pub functions: Vec<FunctionView>,
    /// Total warm pods across all functions.
    pub total_warm_pods: u32,
    /// Total idle pods held in the resource pools.
    pub pooled_idle_pods: u32,
}

/// A pre-warm instruction: create a warm pod for `function` ahead of demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmRequest {
    /// The function to pre-warm.
    pub function: FunctionId,
    /// How many pods to pre-warm.
    pub count: u32,
}

/// Periodically invoked policy that may pre-warm pods for functions expected
/// to be invoked soon (timer schedules, diurnal patterns, workflow chains).
pub trait PrewarmPolicy {
    /// Called every prewarm tick; returns the pods to create ahead of demand.
    fn prewarm(&mut self, view: &PlatformView) -> Vec<PrewarmRequest>;

    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;

    /// Whether this policy never pre-warms and never inspects the view.
    ///
    /// When `true`, the engine skips building the whole-platform
    /// [`PlatformView`] snapshot on every tick — a pure read, so skipping it
    /// cannot change any simulation outcome, but on long horizons with many
    /// functions it is a large share of tick cost. Only override this to
    /// return `true` for policies whose [`prewarm`](Self::prewarm) is
    /// side-effect-free and always returns no requests.
    fn is_noop(&self) -> bool {
        false
    }
}

/// Baseline: never pre-warm.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrewarm;

impl PrewarmPolicy for NoPrewarm {
    fn prewarm(&mut self, _view: &PlatformView) -> Vec<PrewarmRequest> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "no-prewarm"
    }

    fn is_noop(&self) -> bool {
        true
    }
}

/// Admission policy: may delay the execution of a request (peak shaving of
/// asynchronous, non-latency-critical triggers).
pub trait AdmissionPolicy {
    /// Returns how long (milliseconds) to delay the given arrival; 0 admits
    /// the request immediately. Synchronous triggers should never be delayed.
    fn delay_ms(&mut self, view: &FunctionView, now_ms: u64) -> u64;

    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;

    /// Whether this policy is a guaranteed no-op: it never delays a request
    /// and keeps no internal state. The engine skips assembling the
    /// per-arrival [`FunctionView`] (a pure read of simulation state) for
    /// no-op policies, so this must only return `true` when `delay_ms` is
    /// side-effect-free and always returns zero.
    fn is_noop(&self) -> bool {
        false
    }
}

/// Baseline: admit everything immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAdmissionControl;

impl AdmissionPolicy for NoAdmissionControl {
    fn delay_ms(&mut self, _view: &FunctionView, _now_ms: u64) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "no-admission-control"
    }

    fn is_noop(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> FunctionView {
        FunctionView {
            function: FunctionId::new(1),
            runtime: Runtime::Python3,
            trigger: TriggerType::Obs,
            config: ResourceConfig::SMALL_300_128,
            timer_period_secs: 0.0,
            warm_pods: 0,
            arrivals: 10,
            cold_starts: 5,
            recent_arrivals: 2,
            last_arrival_ms: Some(1000),
        }
    }

    #[test]
    fn no_prewarm_returns_nothing() {
        let mut p = NoPrewarm;
        let platform = PlatformView {
            now_ms: 0,
            functions: vec![view()],
            total_warm_pods: 0,
            pooled_idle_pods: 8,
        };
        assert!(p.prewarm(&platform).is_empty());
        assert_eq!(p.name(), "no-prewarm");
        assert!(p.is_noop());
    }

    #[test]
    fn prewarm_policies_are_not_noop_by_default() {
        struct AlwaysOne;
        impl PrewarmPolicy for AlwaysOne {
            fn prewarm(&mut self, _view: &PlatformView) -> Vec<PrewarmRequest> {
                vec![PrewarmRequest {
                    function: FunctionId::new(1),
                    count: 1,
                }]
            }
            fn name(&self) -> &'static str {
                "always-one"
            }
        }
        assert!(!AlwaysOne.is_noop());
    }

    #[test]
    fn no_admission_control_never_delays() {
        let mut p = NoAdmissionControl;
        assert_eq!(p.delay_ms(&view(), 123), 0);
        assert_eq!(p.name(), "no-admission-control");
        assert!(p.is_noop());
    }

    #[test]
    fn admission_policies_are_not_noop_by_default() {
        struct DelayEverything;
        impl AdmissionPolicy for DelayEverything {
            fn delay_ms(&mut self, _view: &FunctionView, _now_ms: u64) -> u64 {
                1
            }
            fn name(&self) -> &'static str {
                "delay-everything"
            }
        }
        assert!(!DelayEverything.is_noop());
    }
}

//! Keep-alive policies.
//!
//! The production platform keeps an idle pod alive for a fixed minute before
//! deleting it. The paper points out two mismatches (Sections 4.3 and 5):
//! timer functions firing less often than the keep-alive period pay a cold
//! start on every invocation while still wasting a minute of idle pod time,
//! and bursty functions would benefit from longer retention. This module
//! provides the baseline [`FixedKeepAlive`] plus two of the proposed
//! improvements: [`AdaptiveKeepAlive`] (per-function inter-arrival histogram)
//! and [`TimerAwareKeepAlive`] (release timer pods early, retain them just
//! long enough when the period is close to the default).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use fntrace::{FunctionId, TriggerType};

/// Per-function observation history available to keep-alive policies.
///
/// The recent inter-arrival window is a circular buffer: once full, the
/// oldest observation is overwritten in place, so recording an arrival is
/// O(1) with no per-arrival shifting. Percentile queries sort a cached copy
/// of the window lazily — the cache is invalidated by each arrival and
/// rebuilt only when a policy actually asks (the adaptive keep-alive does;
/// the fixed and timer-aware policies never do), which keeps the
/// per-arrival hot path free of any sorted-structure maintenance.
#[derive(Debug, Clone, Default)]
pub struct FunctionHistory {
    /// Recent inter-arrival times in milliseconds (circular once full;
    /// `head` marks the oldest entry).
    recent_iat_ms: Vec<u64>,
    /// Index of the oldest entry in `recent_iat_ms` once the ring is full.
    head: usize,
    /// Lazily sorted copy of the window, rebuilt on query when stale.
    sorted_cache: RefCell<Vec<u64>>,
    /// Whether `sorted_cache` is out of date with the ring.
    sorted_stale: Cell<bool>,
    /// How many times the sorted cache has actually been rebuilt — at most
    /// once per window mutation, regardless of how many quantile queries run
    /// between arrivals (pinned by a regression test).
    sorted_rebuilds: Cell<u64>,
    /// Timestamp of the most recent arrival.
    last_arrival_ms: Option<u64>,
    /// Total arrivals observed.
    pub arrivals: u64,
    /// Total cold starts observed.
    pub cold_starts: u64,
}

const HISTORY_CAP: usize = 64;

impl FunctionHistory {
    /// Records an arrival at `now_ms`.
    pub fn observe_arrival(&mut self, now_ms: u64) {
        if let Some(last) = self.last_arrival_ms {
            let iat = now_ms.saturating_sub(last);
            if self.recent_iat_ms.len() == HISTORY_CAP {
                self.recent_iat_ms[self.head] = iat;
                self.head = (self.head + 1) % HISTORY_CAP;
            } else {
                self.recent_iat_ms.push(iat);
            }
            self.sorted_stale.set(true);
        }
        self.last_arrival_ms = Some(now_ms);
        self.arrivals += 1;
    }

    /// Records that an arrival caused a cold start.
    pub fn observe_cold_start(&mut self) {
        self.cold_starts += 1;
    }

    /// Timestamp of the most recent arrival, if any.
    pub fn last_arrival(&self) -> Option<u64> {
        self.last_arrival_ms
    }

    /// Refreshes the sorted cache from the ring if it is stale.
    fn refresh_sorted(&self) {
        if self.sorted_stale.replace(false) {
            let mut cache = self.sorted_cache.borrow_mut();
            cache.clear();
            cache.extend_from_slice(&self.recent_iat_ms);
            cache.sort_unstable();
            self.sorted_rebuilds.set(self.sorted_rebuilds.get() + 1);
        }
    }

    /// Number of inter-arrival samples currently in the window.
    pub fn sample_count(&self) -> usize {
        self.recent_iat_ms.len()
    }

    /// How many times the lazy percentile cache has been rebuilt. Exposed so
    /// tests can pin the dirty-flag contract: at most one rebuild per window
    /// mutation, however many quantile queries run in between.
    pub fn sorted_rebuilds(&self) -> u64 {
        self.sorted_rebuilds.get()
    }

    /// An arbitrary quantile of the recent inter-arrival times (exact order
    /// statistic at `ceil(q * n) - 1`), or `None` when fewer than four
    /// observations exist. `q` is clamped into `[0, 1]`; queries share the
    /// lazily rebuilt sorted cache with [`iat_p90_ms`](Self::iat_p90_ms).
    pub fn iat_quantile_ms(&self, q: f64) -> Option<u64> {
        self.refresh_sorted();
        let sorted = self.sorted_cache.borrow();
        if sorted.len() < 4 {
            return None;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.5
        };
        let idx = if q <= 0.0 {
            0
        } else {
            (((sorted.len() as f64) * q).ceil() as usize).saturating_sub(1)
        };
        Some(sorted[idx.min(sorted.len() - 1)])
    }

    /// Dispersion of the window: the p90 / median inter-arrival ratio.
    /// Near 1 for metronomic (timer-like) traffic, large for bursty traffic.
    /// `None` without enough history, or when the median is zero.
    pub fn iat_dispersion(&self) -> Option<f64> {
        let median = self.iat_median_ms()?;
        if median == 0 {
            return None;
        }
        let p90 = self.iat_p90_ms()?;
        Some(p90 as f64 / median as f64)
    }

    /// A high percentile (approximately p90) of the recent inter-arrival
    /// times, or `None` when fewer than four observations exist.
    pub fn iat_p90_ms(&self) -> Option<u64> {
        self.refresh_sorted();
        let sorted = self.sorted_cache.borrow();
        if sorted.len() < 4 {
            return None;
        }
        let idx = ((sorted.len() as f64) * 0.9).ceil() as usize - 1;
        Some(sorted[idx.min(sorted.len() - 1)])
    }

    /// Median of the recent inter-arrival times, if enough history exists.
    pub fn iat_median_ms(&self) -> Option<u64> {
        self.refresh_sorted();
        let sorted = self.sorted_cache.borrow();
        if sorted.len() < 4 {
            return None;
        }
        Some(sorted[sorted.len() / 2])
    }
}

/// Decides how long an idle pod of a function should be retained.
pub trait KeepAlivePolicy {
    /// Keep-alive duration in milliseconds for an idle pod of `function`.
    fn keep_alive_ms(&self, function: FunctionId, history: &FunctionHistory) -> u64;

    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;
}

/// The production default: a fixed keep-alive (one minute).
#[derive(Debug, Clone, Copy)]
pub struct FixedKeepAlive {
    /// Keep-alive duration in milliseconds.
    pub duration_ms: u64,
}

impl Default for FixedKeepAlive {
    fn default() -> Self {
        Self {
            duration_ms: 60_000,
        }
    }
}

impl KeepAlivePolicy for FixedKeepAlive {
    fn keep_alive_ms(&self, _function: FunctionId, _history: &FunctionHistory) -> u64 {
        self.duration_ms
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Adaptive keep-alive: retain idle pods slightly longer than the function's
/// recent 90th-percentile inter-arrival time, clamped to a configurable
/// range. Functions with no history fall back to the default.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveKeepAlive {
    /// Fallback / baseline keep-alive in milliseconds.
    pub default_ms: u64,
    /// Lower clamp in milliseconds.
    pub min_ms: u64,
    /// Upper clamp in milliseconds.
    pub max_ms: u64,
    /// Multiplier applied to the observed p90 inter-arrival time.
    pub margin: f64,
}

impl Default for AdaptiveKeepAlive {
    fn default() -> Self {
        Self {
            default_ms: 60_000,
            min_ms: 5_000,
            max_ms: 900_000,
            margin: 1.2,
        }
    }
}

impl KeepAlivePolicy for AdaptiveKeepAlive {
    fn keep_alive_ms(&self, _function: FunctionId, history: &FunctionHistory) -> u64 {
        match history.iat_p90_ms() {
            Some(p90) => (((p90 as f64) * self.margin) as u64).clamp(self.min_ms, self.max_ms),
            None => self.default_ms,
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Timer-aware keep-alive: timer-triggered functions have a known period, so
/// the pod is either retained just past the next firing (when the period is
/// within `retain_up_to_ms`) or released almost immediately (when the next
/// firing is far away and keeping the pod would only waste resources).
#[derive(Debug, Clone)]
pub struct TimerAwareKeepAlive {
    /// Keep-alive for non-timer functions, in milliseconds.
    pub default_ms: u64,
    /// Retain a timer pod when its period is at most this long.
    pub retain_up_to_ms: u64,
    /// Keep-alive used when the timer period is longer than
    /// `retain_up_to_ms` (release resources quickly).
    pub release_ms: u64,
    /// Timer periods per function, in milliseconds.
    timer_periods_ms: HashMap<FunctionId, u64>,
}

impl TimerAwareKeepAlive {
    /// Creates the policy from the known timer periods of the workload.
    pub fn new(
        default_ms: u64,
        retain_up_to_ms: u64,
        release_ms: u64,
        timers: impl IntoIterator<Item = (FunctionId, u64)>,
    ) -> Self {
        Self {
            default_ms,
            retain_up_to_ms,
            release_ms,
            timer_periods_ms: timers.into_iter().collect(),
        }
    }

    /// Builds the policy from function metadata: every function whose trigger
    /// list contains a timer registers its period.
    pub fn from_specs<'a>(
        default_ms: u64,
        retain_up_to_ms: u64,
        release_ms: u64,
        specs: impl IntoIterator<Item = (&'a FunctionId, &'a [TriggerType], f64)>,
    ) -> Self {
        let timers = specs
            .into_iter()
            .filter(|(_, triggers, period)| triggers.contains(&TriggerType::Timer) && *period > 0.0)
            .map(|(id, _, period)| (*id, (period * 1000.0) as u64))
            .collect::<Vec<_>>();
        Self::new(default_ms, retain_up_to_ms, release_ms, timers)
    }
}

impl KeepAlivePolicy for TimerAwareKeepAlive {
    fn keep_alive_ms(&self, function: FunctionId, _history: &FunctionHistory) -> u64 {
        match self.timer_periods_ms.get(&function) {
            Some(&period) if period <= self.retain_up_to_ms => period + 2_000,
            Some(_) => self.release_ms,
            None => self.default_ms,
        }
    }

    fn name(&self) -> &'static str {
        "timer-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with_iats(iats: &[u64]) -> FunctionHistory {
        let mut h = FunctionHistory::default();
        let mut t = 0;
        h.observe_arrival(t);
        for &iat in iats {
            t += iat;
            h.observe_arrival(t);
        }
        h
    }

    #[test]
    fn history_tracks_iats_and_counts() {
        let mut h = FunctionHistory::default();
        assert!(h.iat_p90_ms().is_none());
        h.observe_arrival(0);
        h.observe_arrival(100);
        h.observe_cold_start();
        assert_eq!(h.arrivals, 2);
        assert_eq!(h.cold_starts, 1);
        assert!(h.iat_p90_ms().is_none(), "needs more history");
        let h = history_with_iats(&[100, 200, 300, 400, 500]);
        assert_eq!(h.iat_median_ms(), Some(300));
        assert_eq!(h.iat_p90_ms(), Some(500));
    }

    #[test]
    fn history_ring_is_bounded() {
        let mut h = FunctionHistory::default();
        for i in 0..(HISTORY_CAP as u64 * 3) {
            h.observe_arrival(i * 10);
        }
        assert!(h.recent_iat_ms.len() <= HISTORY_CAP);
        assert!(h.iat_p90_ms().is_some());
        assert_eq!(h.sorted_cache.borrow().len(), h.recent_iat_ms.len());
        assert_eq!(h.arrivals, HISTORY_CAP as u64 * 3);
    }

    #[test]
    fn lazy_percentiles_match_a_sort_oracle() {
        // Deterministic pseudo-random arrival gaps (with duplicates) across
        // several evictions of the bounded window, querying after every
        // arrival so the lazy cache is exercised in its worst case.
        let mut h = FunctionHistory::default();
        let mut t = 0u64;
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..(HISTORY_CAP * 4) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += x % 50;
            h.observe_arrival(t);
            let mut oracle = h.recent_iat_ms.clone();
            oracle.sort_unstable();
            if oracle.len() >= 4 {
                let idx = ((oracle.len() as f64) * 0.9).ceil() as usize - 1;
                assert_eq!(h.iat_p90_ms(), Some(oracle[idx.min(oracle.len() - 1)]));
                assert_eq!(h.iat_median_ms(), Some(oracle[oracle.len() / 2]));
            } else {
                assert_eq!(h.iat_p90_ms(), None);
                assert_eq!(h.iat_median_ms(), None);
            }
            // Repeat queries without a new arrival hit the cached copy.
            assert_eq!(h.iat_p90_ms(), h.iat_p90_ms());
        }
    }

    #[test]
    fn arbitrary_quantiles_match_the_sorted_window() {
        let h = history_with_iats(&[100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]);
        assert_eq!(h.iat_quantile_ms(0.0), Some(100));
        assert_eq!(h.iat_quantile_ms(0.5), Some(500));
        assert_eq!(h.iat_quantile_ms(0.75), Some(800));
        assert_eq!(h.iat_quantile_ms(0.9), Some(900));
        assert_eq!(h.iat_quantile_ms(1.0), Some(1000));
        // Out-of-range and non-finite inputs degrade gracefully.
        assert_eq!(h.iat_quantile_ms(7.0), Some(1000));
        assert_eq!(h.iat_quantile_ms(-1.0), Some(100));
        assert_eq!(h.iat_quantile_ms(f64::NAN), Some(500));
        // The p90 shortcut is the same order statistic.
        assert_eq!(h.iat_quantile_ms(0.9), h.iat_p90_ms());
        // Too little history: no estimate.
        let sparse = history_with_iats(&[100, 200]);
        assert_eq!(sparse.iat_quantile_ms(0.5), None);
        assert_eq!(sparse.sample_count(), 2);
    }

    #[test]
    fn dispersion_separates_regular_from_bursty_traffic() {
        let regular = history_with_iats(&[300, 300, 300, 300, 300, 300]);
        let d = regular.iat_dispersion().expect("enough history");
        assert!((d - 1.0).abs() < 1e-9, "regular dispersion {d}");
        let bursty = history_with_iats(&[10, 10, 10, 10, 10, 10, 10, 5_000]);
        assert!(bursty.iat_dispersion().expect("enough history") > 4.0);
        assert_eq!(FunctionHistory::default().iat_dispersion(), None);
        // An all-zero window (same-millisecond bursts) has no defined ratio.
        let zeros = history_with_iats(&[0, 0, 0, 0, 0]);
        assert_eq!(zeros.iat_dispersion(), None);
    }

    /// Regression test for the dirty-flag path: the sorted percentile cache
    /// must be rebuilt **at most once per window mutation** — repeated
    /// queries between arrivals (every access pattern the adaptive policies
    /// produce: p90, median, arbitrary quantiles, dispersion) hit the cached
    /// copy, never a fresh sort.
    #[test]
    fn percentile_cache_rebuilds_at_most_once_per_mutation() {
        let mut h = FunctionHistory::default();
        let mut t = 0u64;
        // Arrivals with no queries in between never rebuild the cache.
        for i in 0..10 {
            t += 50 + i;
            h.observe_arrival(t);
        }
        assert_eq!(h.sorted_rebuilds(), 0, "no query, no rebuild");
        // A burst of mixed queries after one mutation costs one rebuild.
        let _ = h.iat_p90_ms();
        let _ = h.iat_median_ms();
        let _ = h.iat_quantile_ms(0.75);
        let _ = h.iat_dispersion();
        assert_eq!(h.sorted_rebuilds(), 1, "one rebuild per mutation");
        // Interleave mutations and query bursts across ring evictions: the
        // rebuild count tracks the mutation count, not the query count.
        for round in 0..(HISTORY_CAP as u64 * 2) {
            t += 30 + round % 7;
            h.observe_arrival(t);
            for q in [0.1, 0.5, 0.9, 0.99] {
                let _ = h.iat_quantile_ms(q);
            }
            let _ = h.iat_p90_ms();
            assert_eq!(h.sorted_rebuilds(), 2 + round, "round {round}");
        }
        // A mutation nobody queries stays un-sorted until the next query.
        let before = h.sorted_rebuilds();
        t += 40;
        h.observe_arrival(t);
        assert_eq!(h.sorted_rebuilds(), before);
        let _ = h.iat_median_ms();
        let _ = h.iat_median_ms();
        assert_eq!(h.sorted_rebuilds(), before + 1);
    }

    #[test]
    fn fixed_policy_ignores_history() {
        let p = FixedKeepAlive::default();
        let h = history_with_iats(&[10, 10, 10, 10]);
        assert_eq!(p.keep_alive_ms(FunctionId::new(1), &h), 60_000);
        assert_eq!(p.name(), "fixed");
    }

    #[test]
    fn adaptive_policy_tracks_interarrival_times() {
        let p = AdaptiveKeepAlive::default();
        let f = FunctionId::new(1);
        // Rapid arrivals: short keep-alive (but at least the minimum).
        let fast = history_with_iats(&[1_000; 10]);
        assert_eq!(p.keep_alive_ms(f, &fast), 5_000);
        // Five-minute gaps: keep-alive stretches past them.
        let slow = history_with_iats(&[300_000; 10]);
        let ka = p.keep_alive_ms(f, &slow);
        assert!(ka > 300_000 && ka <= 900_000, "ka {ka}");
        // No history: default.
        assert_eq!(p.keep_alive_ms(f, &FunctionHistory::default()), 60_000);
        assert_eq!(p.name(), "adaptive");
    }

    #[test]
    fn timer_aware_policy_uses_periods() {
        let f_fast = FunctionId::new(1);
        let f_slow = FunctionId::new(2);
        let f_other = FunctionId::new(3);
        let p = TimerAwareKeepAlive::new(
            60_000,
            300_000,
            1_000,
            [(f_fast, 120_000), (f_slow, 3_600_000)],
        );
        let h = FunctionHistory::default();
        // Period within retention range: hold just past the next firing.
        assert_eq!(p.keep_alive_ms(f_fast, &h), 122_000);
        // Long period: release quickly instead of idling for a minute.
        assert_eq!(p.keep_alive_ms(f_slow, &h), 1_000);
        // Non-timer function: default.
        assert_eq!(p.keep_alive_ms(f_other, &h), 60_000);
        assert_eq!(p.name(), "timer-aware");
    }

    #[test]
    fn zero_keep_alive_is_honoured_by_the_policy() {
        let p = FixedKeepAlive { duration_ms: 0 };
        let h = history_with_iats(&[10, 10, 10, 10]);
        assert_eq!(p.keep_alive_ms(FunctionId::new(1), &h), 0);
    }

    #[test]
    fn timer_aware_from_specs() {
        let f1 = FunctionId::new(1);
        let f2 = FunctionId::new(2);
        let triggers_timer = [TriggerType::Timer];
        let triggers_api = [TriggerType::ApigSync];
        let p = TimerAwareKeepAlive::from_specs(
            60_000,
            600_000,
            2_000,
            [
                (&f1, triggers_timer.as_slice(), 300.0),
                (&f2, triggers_api.as_slice(), 0.0),
            ],
        );
        let h = FunctionHistory::default();
        assert_eq!(p.keep_alive_ms(f1, &h), 302_000);
        assert_eq!(p.keep_alive_ms(f2, &h), 60_000);
    }
}

// Edge cases of keep-alive expiry as seen by the simulation state machine:
// expiry landing exactly on the horizon, zero keep-alive, and a pod re-warmed
// back-to-back before its scheduled expiry fires.
#[cfg(test)]
mod expiry_edge_tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::engine::SimulationEngine;
    use crate::event::Event;
    use crate::policy::{NoAdmissionControl, NoPrewarm};
    use crate::state::SimState;
    use faas_workload::profile::{Calibration, RegionProfile};
    use faas_workload::{FunctionSpec, WorkloadEvent, WorkloadSpec};
    use fntrace::{ResourceConfig, Runtime, TriggerType, UserId};

    fn api_spec(id: u64) -> FunctionSpec {
        FunctionSpec {
            function: FunctionId::new(id),
            user: UserId::new(1),
            runtime: Runtime::Python3,
            triggers: vec![TriggerType::ApigSync],
            config: ResourceConfig::SMALL_300_128,
            base_requests_per_day: 100.0,
            timer_period_secs: 0.0,
            diurnal_amplitude: 0.0,
            peak_offset_hours: 0.0,
            median_execution_secs: 0.05,
            cpu_millicores: 100.0,
            memory_bytes: 64 << 20,
            has_dependencies: false,
            concurrency: 1,
            upstream: None,
        }
    }

    fn workload(events: &[u64]) -> WorkloadSpec {
        let profile = RegionProfile::r2();
        WorkloadSpec {
            region: profile.region,
            profile,
            calibration: Calibration {
                duration_days: 1,
                ..Calibration::default()
            },
            functions: vec![api_spec(1)],
            events: events
                .iter()
                .map(|&timestamp_ms| WorkloadEvent {
                    timestamp_ms,
                    function: FunctionId::new(1),
                })
                .collect(),
            source: faas_workload::WorkloadSource::Synthetic,
        }
    }

    fn config() -> PlatformConfig {
        PlatformConfig {
            record_trace: false,
            ..PlatformConfig::default()
        }
    }

    /// A single-shard state over the whole workload table, with a fresh
    /// epoch snapshot — what the engine builds for an unsharded run.
    fn test_state<'a>(w: &'a WorkloadSpec, cfg: &PlatformConfig, seed: u64) -> SimState<'a> {
        let members: Vec<u32> = (0..w.functions.len() as u32).collect();
        let snapshot = crate::shard::EpochLedger::new(cfg).snapshot();
        SimState::new(w, cfg, seed, members, snapshot)
    }

    /// Drains the internal queue the way the engine does, handling only the
    /// pod life-cycle events the tests exercise.
    fn drain(state: &mut SimState<'_>, policy: &dyn KeepAlivePolicy) {
        while let Some((t, event)) = state.queue.pop() {
            match event {
                Event::RequestComplete { pod, busy_ms } => {
                    state.complete_request(pod, t, busy_ms, policy)
                }
                Event::PodExpire { pod, generation } => state.expire_pod(pod, t, generation),
                _ => {}
            }
        }
    }

    #[test]
    fn zero_keep_alive_never_serves_warm_requests() {
        // Two arrivals far apart: with a zero keep-alive the pod from the
        // first request is gone long before the second, so both are cold.
        let w = workload(&[1_000, 40_000_000]);
        let engine = SimulationEngine::new(
            config(),
            Box::new(FixedKeepAlive { duration_ms: 0 }),
            Box::new(NoPrewarm),
            Box::new(NoAdmissionControl),
            3,
        );
        let (report, _) = engine.run(&w);
        assert_eq!(report.requests, 2);
        assert_eq!(report.cold_starts, 2);
        assert_eq!(report.warm_starts, 0);
        // The pod idles for at most the 1 ms expiry floor, so essentially no
        // idle time (and no idle memory) accumulates.
        assert!(report.idle_pod_time_s < 0.1, "{}", report.idle_pod_time_s);
    }

    #[test]
    fn expiry_exactly_at_horizon_matches_forced_finalize() {
        let w = workload(&[]);
        let cfg = config();
        let policy = FixedKeepAlive {
            duration_ms: 10_000,
        };

        // Path A: the scheduled expiry event fires at its exact due time.
        let mut a = test_state(&w, &cfg, 9);
        let f = a.resolve(FunctionId::new(1)).expect("function in workload");
        a.dispatch(f, 0, &policy);
        let (t_complete, event) = a.queue.pop().expect("completion scheduled");
        let Event::RequestComplete { pod, busy_ms } = event else {
            panic!("expected completion, got {event:?}");
        };
        a.complete_request(pod, t_complete, busy_ms, &policy);
        let (t_expire, event) = a.queue.pop().expect("expiry scheduled");
        let Event::PodExpire { pod, generation } = event else {
            panic!("expected expiry, got {event:?}");
        };
        assert_eq!(t_expire, t_complete + 10_000);
        a.expire_pod(pod, t_expire, generation);
        assert!(a.pods.is_empty(), "pod expired at its due time");
        // A duplicate expiry for a terminated pod is a no-op.
        a.expire_pod(pod, t_expire, generation);

        // Path B: same run (same seed is deterministic), but the horizon cuts
        // the simulation at exactly the expiry time and finalizes the pod.
        let mut b = test_state(&w, &cfg, 9);
        b.dispatch(f, 0, &policy);
        let (tc, event) = b.queue.pop().expect("completion scheduled");
        let Event::RequestComplete {
            pod: pod_b,
            busy_ms,
        } = event
        else {
            panic!("expected completion, got {event:?}");
        };
        b.complete_request(pod_b, tc, busy_ms, &policy);
        b.finalize_pod(pod_b, t_expire);

        // Both paths account the identical lifetime, idle time, and wasted
        // memory: expiring exactly at the horizon is not a special case.
        let ra = a.into_outcome();
        let rb = b.into_outcome();
        assert!(ra.accum[0].pod_lifetime_s > 0.0);
        assert_eq!(ra.accum[0].pod_lifetime_s, rb.accum[0].pod_lifetime_s);
        assert_eq!(ra.accum[0].idle_pod_time_s, rb.accum[0].idle_pod_time_s);
        assert_eq!(ra.accum[0].mem_gb_s_wasted, rb.accum[0].mem_gb_s_wasted);
    }

    #[test]
    fn back_to_back_rewarm_invalidates_stale_expiry() {
        let w = workload(&[]);
        let cfg = config();
        let policy = FixedKeepAlive {
            duration_ms: 10_000,
        };

        let mut state = test_state(&w, &cfg, 11);
        let f = state
            .resolve(FunctionId::new(1))
            .expect("function in workload");
        state.dispatch(f, 0, &policy);
        let (t_complete, event) = state.queue.pop().expect("completion scheduled");
        let Event::RequestComplete { pod, busy_ms } = event else {
            panic!("expected completion, got {event:?}");
        };
        state.complete_request(pod, t_complete, busy_ms, &policy);
        assert_eq!(state.queue.len(), 1, "expiry pending");

        // A new request lands on the idle pod before the expiry fires: the
        // pod is re-warmed and the pending expiry becomes stale.
        state.dispatch(f, t_complete + 1, &policy);
        assert_eq!(state.report.warm_starts, 1);
        assert_eq!(state.report.cold_starts, 1);

        // Drain everything: the stale expiry (wrong generation or busy pod)
        // must not kill the pod mid-request; the fresh expiry after the
        // second completion must.
        drain(&mut state, &policy);
        assert!(state.pods.is_empty(), "fresh expiry eventually fires");
        assert_eq!(state.report.requests, 2);
        // One pod served both requests, so exactly one lifetime is accounted.
        let outcome = state.into_outcome();
        assert!(outcome.accum[0].pod_lifetime_s > 0.0);
        assert!(outcome.accum[0].idle_pod_time_s > 0.0);
    }
}

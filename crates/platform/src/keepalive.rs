//! Keep-alive policies.
//!
//! The production platform keeps an idle pod alive for a fixed minute before
//! deleting it. The paper points out two mismatches (Sections 4.3 and 5):
//! timer functions firing less often than the keep-alive period pay a cold
//! start on every invocation while still wasting a minute of idle pod time,
//! and bursty functions would benefit from longer retention. This module
//! provides the baseline [`FixedKeepAlive`] plus two of the proposed
//! improvements: [`AdaptiveKeepAlive`] (per-function inter-arrival histogram)
//! and [`TimerAwareKeepAlive`] (release timer pods early, retain them just
//! long enough when the period is close to the default).

use std::collections::HashMap;

use fntrace::{FunctionId, TriggerType};

/// Per-function observation history available to keep-alive policies.
#[derive(Debug, Clone, Default)]
pub struct FunctionHistory {
    /// Recent inter-arrival times in milliseconds (bounded ring).
    recent_iat_ms: Vec<u64>,
    /// Timestamp of the most recent arrival.
    last_arrival_ms: Option<u64>,
    /// Total arrivals observed.
    pub arrivals: u64,
    /// Total cold starts observed.
    pub cold_starts: u64,
}

const HISTORY_CAP: usize = 64;

impl FunctionHistory {
    /// Records an arrival at `now_ms`.
    pub fn observe_arrival(&mut self, now_ms: u64) {
        if let Some(last) = self.last_arrival_ms {
            let iat = now_ms.saturating_sub(last);
            if self.recent_iat_ms.len() == HISTORY_CAP {
                self.recent_iat_ms.remove(0);
            }
            self.recent_iat_ms.push(iat);
        }
        self.last_arrival_ms = Some(now_ms);
        self.arrivals += 1;
    }

    /// Records that an arrival caused a cold start.
    pub fn observe_cold_start(&mut self) {
        self.cold_starts += 1;
    }

    /// Timestamp of the most recent arrival, if any.
    pub fn last_arrival(&self) -> Option<u64> {
        self.last_arrival_ms
    }

    /// A high percentile (approximately p90) of the recent inter-arrival
    /// times, or `None` when fewer than four observations exist.
    pub fn iat_p90_ms(&self) -> Option<u64> {
        if self.recent_iat_ms.len() < 4 {
            return None;
        }
        let mut sorted = self.recent_iat_ms.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64) * 0.9).ceil() as usize - 1;
        Some(sorted[idx.min(sorted.len() - 1)])
    }

    /// Median of the recent inter-arrival times, if enough history exists.
    pub fn iat_median_ms(&self) -> Option<u64> {
        if self.recent_iat_ms.len() < 4 {
            return None;
        }
        let mut sorted = self.recent_iat_ms.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }
}

/// Decides how long an idle pod of a function should be retained.
pub trait KeepAlivePolicy {
    /// Keep-alive duration in milliseconds for an idle pod of `function`.
    fn keep_alive_ms(&self, function: FunctionId, history: &FunctionHistory) -> u64;

    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;
}

/// The production default: a fixed keep-alive (one minute).
#[derive(Debug, Clone, Copy)]
pub struct FixedKeepAlive {
    /// Keep-alive duration in milliseconds.
    pub duration_ms: u64,
}

impl Default for FixedKeepAlive {
    fn default() -> Self {
        Self {
            duration_ms: 60_000,
        }
    }
}

impl KeepAlivePolicy for FixedKeepAlive {
    fn keep_alive_ms(&self, _function: FunctionId, _history: &FunctionHistory) -> u64 {
        self.duration_ms
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Adaptive keep-alive: retain idle pods slightly longer than the function's
/// recent 90th-percentile inter-arrival time, clamped to a configurable
/// range. Functions with no history fall back to the default.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveKeepAlive {
    /// Fallback / baseline keep-alive in milliseconds.
    pub default_ms: u64,
    /// Lower clamp in milliseconds.
    pub min_ms: u64,
    /// Upper clamp in milliseconds.
    pub max_ms: u64,
    /// Multiplier applied to the observed p90 inter-arrival time.
    pub margin: f64,
}

impl Default for AdaptiveKeepAlive {
    fn default() -> Self {
        Self {
            default_ms: 60_000,
            min_ms: 5_000,
            max_ms: 900_000,
            margin: 1.2,
        }
    }
}

impl KeepAlivePolicy for AdaptiveKeepAlive {
    fn keep_alive_ms(&self, _function: FunctionId, history: &FunctionHistory) -> u64 {
        match history.iat_p90_ms() {
            Some(p90) => (((p90 as f64) * self.margin) as u64).clamp(self.min_ms, self.max_ms),
            None => self.default_ms,
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Timer-aware keep-alive: timer-triggered functions have a known period, so
/// the pod is either retained just past the next firing (when the period is
/// within `retain_up_to_ms`) or released almost immediately (when the next
/// firing is far away and keeping the pod would only waste resources).
#[derive(Debug, Clone)]
pub struct TimerAwareKeepAlive {
    /// Keep-alive for non-timer functions, in milliseconds.
    pub default_ms: u64,
    /// Retain a timer pod when its period is at most this long.
    pub retain_up_to_ms: u64,
    /// Keep-alive used when the timer period is longer than
    /// `retain_up_to_ms` (release resources quickly).
    pub release_ms: u64,
    /// Timer periods per function, in milliseconds.
    timer_periods_ms: HashMap<FunctionId, u64>,
}

impl TimerAwareKeepAlive {
    /// Creates the policy from the known timer periods of the workload.
    pub fn new(
        default_ms: u64,
        retain_up_to_ms: u64,
        release_ms: u64,
        timers: impl IntoIterator<Item = (FunctionId, u64)>,
    ) -> Self {
        Self {
            default_ms,
            retain_up_to_ms,
            release_ms,
            timer_periods_ms: timers.into_iter().collect(),
        }
    }

    /// Builds the policy from function metadata: every function whose trigger
    /// list contains a timer registers its period.
    pub fn from_specs<'a>(
        default_ms: u64,
        retain_up_to_ms: u64,
        release_ms: u64,
        specs: impl IntoIterator<Item = (&'a FunctionId, &'a [TriggerType], f64)>,
    ) -> Self {
        let timers = specs
            .into_iter()
            .filter(|(_, triggers, period)| triggers.contains(&TriggerType::Timer) && *period > 0.0)
            .map(|(id, _, period)| (*id, (period * 1000.0) as u64))
            .collect::<Vec<_>>();
        Self::new(default_ms, retain_up_to_ms, release_ms, timers)
    }
}

impl KeepAlivePolicy for TimerAwareKeepAlive {
    fn keep_alive_ms(&self, function: FunctionId, _history: &FunctionHistory) -> u64 {
        match self.timer_periods_ms.get(&function) {
            Some(&period) if period <= self.retain_up_to_ms => period + 2_000,
            Some(_) => self.release_ms,
            None => self.default_ms,
        }
    }

    fn name(&self) -> &'static str {
        "timer-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with_iats(iats: &[u64]) -> FunctionHistory {
        let mut h = FunctionHistory::default();
        let mut t = 0;
        h.observe_arrival(t);
        for &iat in iats {
            t += iat;
            h.observe_arrival(t);
        }
        h
    }

    #[test]
    fn history_tracks_iats_and_counts() {
        let mut h = FunctionHistory::default();
        assert!(h.iat_p90_ms().is_none());
        h.observe_arrival(0);
        h.observe_arrival(100);
        h.observe_cold_start();
        assert_eq!(h.arrivals, 2);
        assert_eq!(h.cold_starts, 1);
        assert!(h.iat_p90_ms().is_none(), "needs more history");
        let h = history_with_iats(&[100, 200, 300, 400, 500]);
        assert_eq!(h.iat_median_ms(), Some(300));
        assert_eq!(h.iat_p90_ms(), Some(500));
    }

    #[test]
    fn history_ring_is_bounded() {
        let mut h = FunctionHistory::default();
        for i in 0..(HISTORY_CAP as u64 * 3) {
            h.observe_arrival(i * 10);
        }
        assert!(h.recent_iat_ms.len() <= HISTORY_CAP);
        assert_eq!(h.arrivals, HISTORY_CAP as u64 * 3);
    }

    #[test]
    fn fixed_policy_ignores_history() {
        let p = FixedKeepAlive::default();
        let h = history_with_iats(&[10, 10, 10, 10]);
        assert_eq!(p.keep_alive_ms(FunctionId::new(1), &h), 60_000);
        assert_eq!(p.name(), "fixed");
    }

    #[test]
    fn adaptive_policy_tracks_interarrival_times() {
        let p = AdaptiveKeepAlive::default();
        let f = FunctionId::new(1);
        // Rapid arrivals: short keep-alive (but at least the minimum).
        let fast = history_with_iats(&[1_000; 10]);
        assert_eq!(p.keep_alive_ms(f, &fast), 5_000);
        // Five-minute gaps: keep-alive stretches past them.
        let slow = history_with_iats(&[300_000; 10]);
        let ka = p.keep_alive_ms(f, &slow);
        assert!(ka > 300_000 && ka <= 900_000, "ka {ka}");
        // No history: default.
        assert_eq!(p.keep_alive_ms(f, &FunctionHistory::default()), 60_000);
        assert_eq!(p.name(), "adaptive");
    }

    #[test]
    fn timer_aware_policy_uses_periods() {
        let f_fast = FunctionId::new(1);
        let f_slow = FunctionId::new(2);
        let f_other = FunctionId::new(3);
        let p = TimerAwareKeepAlive::new(
            60_000,
            300_000,
            1_000,
            [(f_fast, 120_000), (f_slow, 3_600_000)],
        );
        let h = FunctionHistory::default();
        // Period within retention range: hold just past the next firing.
        assert_eq!(p.keep_alive_ms(f_fast, &h), 122_000);
        // Long period: release quickly instead of idling for a minute.
        assert_eq!(p.keep_alive_ms(f_slow, &h), 1_000);
        // Non-timer function: default.
        assert_eq!(p.keep_alive_ms(f_other, &h), 60_000);
        assert_eq!(p.name(), "timer-aware");
    }

    #[test]
    fn timer_aware_from_specs() {
        let f1 = FunctionId::new(1);
        let f2 = FunctionId::new(2);
        let triggers_timer = [TriggerType::Timer];
        let triggers_api = [TriggerType::ApigSync];
        let p = TimerAwareKeepAlive::from_specs(
            60_000,
            600_000,
            2_000,
            [
                (&f1, triggers_timer.as_slice(), 300.0),
                (&f2, triggers_api.as_slice(), 0.0),
            ],
        );
        let h = FunctionHistory::default();
        assert_eq!(p.keep_alive_ms(f1, &h), 302_000);
        assert_eq!(p.keep_alive_ms(f2, &h), 60_000);
    }
}

//! The discrete-event simulation loop.
//!
//! [`SimulationEngine`] owns one run's policies and drives a
//! [`SimState`] through a workload: arrivals, completions, keep-alive
//! expiries, pre-warm ticks, and admission-control delays. Engines are
//! single-use by design — they are stamped out either by the compatibility
//! [`Simulator`](crate::Simulator) builder or, for replicated experiment
//! runs, by a [`SimulationSpec`](crate::SimulationSpec) whose policy factory
//! builds a fresh set of policies per run.
//!
//! The loop is *epoch-quantized*: simulated time is cut at fixed
//! [`epoch_ms`](crate::PlatformConfig::epoch_ms) boundaries, and shared
//! capacity (resource pools, cluster load) is reconciled only there, through
//! an `EpochSync` (see [`crate::shard`]). Pool replenishment happens as
//! part of the boundary settlement rather than as a queued event. The
//! single-shard entry point [`SimulationEngine::run_streamed`] runs the same
//! boundary protocol with a trivial in-place ledger, which is what makes it
//! byte-identical to `SimulationSpec::run_sharded` at any shard count.
//!
//! The primary entry point is [`SimulationEngine::run_streamed`], which
//! consumes any [`ArrivalStream`] — arrivals are pulled one at a time, so
//! memory stays proportional to the live simulation state (pods, queue,
//! histories) rather than the event count. [`SimulationEngine::run`] is a
//! thin adapter that wraps a materialised spec's event slice in a
//! [`SliceStream`] and feeds it to the same loop.

use faas_workload::stream::{ArrivalStream, SliceStream};
use faas_workload::WorkloadSpec;
use fntrace::{FunctionId, RegionTrace};

use crate::arena::PodIdx;
use crate::config::PlatformConfig;
use crate::event::Event;
use crate::keepalive::KeepAlivePolicy;
use crate::policy::{AdmissionPolicy, PrewarmPolicy};
use crate::report::SimReport;
use crate::shard::{
    merge_outcomes, EpochLedger, EpochSnapshot, EpochSync, SequentialSync, ShardOutcome,
};
use crate::state::SimState;

/// Single-use discrete-event engine for one region replay (or one shard of
/// one).
pub struct SimulationEngine {
    config: PlatformConfig,
    keep_alive: Box<dyn KeepAlivePolicy>,
    prewarm: Box<dyn PrewarmPolicy>,
    admission: Box<dyn AdmissionPolicy>,
    seed: u64,
}

impl SimulationEngine {
    /// Assembles an engine from a configuration, one policy of each kind, and
    /// the random seed of this run.
    pub fn new(
        config: PlatformConfig,
        keep_alive: Box<dyn KeepAlivePolicy>,
        prewarm: Box<dyn PrewarmPolicy>,
        admission: Box<dyn AdmissionPolicy>,
        seed: u64,
    ) -> Self {
        Self {
            config,
            keep_alive,
            prewarm,
            admission,
            seed,
        }
    }

    /// Runs a materialised workload, returning the report and, when trace
    /// recording is enabled, the full simulated region trace.
    ///
    /// Thin adapter over [`run_streamed`](Self::run_streamed): the spec's
    /// event slice is wrapped in a [`SliceStream`], so the eager and
    /// streaming paths share one event loop and produce identical reports
    /// for identical event sequences.
    pub fn run(self, workload: &WorkloadSpec) -> (SimReport, Option<RegionTrace>) {
        let stream = SliceStream::new(&workload.events, workload.duration_ms());
        self.run_streamed(workload, stream)
    }

    /// Runs the engine over a lazily produced [`ArrivalStream`].
    ///
    /// `workload` supplies the static tables (function specs, profile,
    /// calibration, region); its `events` field is **ignored** — the stream
    /// is the event source, which is what lets multi-day horizons run
    /// without ever materialising their event list. The number of events
    /// consumed is recorded in
    /// [`SimReport::events_processed`](crate::SimReport).
    ///
    /// This is the single-shard special case of the sharded protocol: the
    /// shard owns the whole workload table and reconciles its epoch deltas
    /// against a private [`EpochLedger`], so the result is byte-identical to
    /// `SimulationSpec::run_sharded` at any shard count.
    ///
    /// # Example
    ///
    /// ```
    /// use faas_platform::SimulationSpec;
    /// use faas_workload::population::PopulationConfig;
    /// use faas_workload::profile::{Calibration, RegionProfile};
    /// use faas_workload::StreamedWorkload;
    ///
    /// let workload = StreamedWorkload::generate(
    ///     &RegionProfile::r2(),
    ///     Calibration { duration_days: 1, ..Calibration::default() },
    ///     &PopulationConfig {
    ///         function_scale: 0.002,
    ///         volume_scale: 2.0e-6,
    ///         max_requests_per_day: 2_000.0,
    ///         min_functions: 15,
    ///     },
    ///     7,
    /// );
    /// let spec = SimulationSpec::new();
    /// let engine = spec.engine(workload.header());
    /// let (report, _) = engine.run_streamed(workload.header(), workload.stream());
    /// assert!(report.requests > 0);
    /// assert_eq!(report.events_processed, report.requests);
    /// ```
    pub fn run_streamed(
        self,
        workload: &WorkloadSpec,
        events: impl ArrivalStream,
    ) -> (SimReport, Option<RegionTrace>) {
        let names = (
            self.keep_alive.name().to_string(),
            self.prewarm.name().to_string(),
            self.admission.name().to_string(),
        );
        let mut ledger = EpochLedger::new(&self.config);
        let members: Vec<u32> = (0..workload.functions.len() as u32).collect();
        let snapshot = ledger.snapshot();
        let outcome = {
            let mut sync = SequentialSync {
                ledger: &mut ledger,
            };
            self.run_shard(workload, events, members, snapshot, &mut sync)
        };
        merge_outcomes(
            workload,
            vec![outcome],
            ledger,
            (&names.0, &names.1, &names.2),
        )
    }

    /// Runs one shard: its own event stream, member functions, timing wheel,
    /// and arena, with shared capacity reconciled through `sync` at every
    /// epoch boundary.
    ///
    /// The boundary sequence is `{k * epoch_ms : k >= 1} ∪ {duration}`
    /// clipped to the horizon — derived only from the configuration and the
    /// stream horizon, so every shard of a run crosses the same boundaries
    /// the same number of times (the threaded [`EpochSync`] relies on that
    /// for its barrier). Internal events strictly before a boundary are
    /// drained first; events exactly *at* a boundary run after it, against
    /// the fresh snapshot.
    pub(crate) fn run_shard(
        mut self,
        workload: &WorkloadSpec,
        events: impl ArrivalStream,
        members: Vec<u32>,
        snapshot: EpochSnapshot,
        sync: &mut dyn EpochSync,
    ) -> ShardOutcome {
        let mut state = SimState::new(workload, &self.config, self.seed, members, snapshot);
        // The stream's horizon is the simulation end: periodic ticks stop
        // rescheduling past it and surviving pods are finalised at it.
        let duration = events.horizon_ms();
        let epoch = self.config.epoch_ms.max(1);

        // Initial periodic tick, scheduled exactly like its reschedules.
        state.queue.push(
            tick_after(0, self.config.prewarm_interval_ms),
            Event::PrewarmTick,
        );

        let mut next_boundary = Some(epoch.min(duration));
        for event in events {
            state.report.events_processed += 1;
            while let Some(b) = next_boundary {
                if event.timestamp_ms < b {
                    break;
                }
                self.cross_boundary(&mut state, b, duration, sync);
                next_boundary = next_boundary_after(b, epoch, duration);
            }
            while let Some((t, e)) = state.queue.pop_due(event.timestamp_ms) {
                self.handle_internal(&mut state, t, e, duration);
            }
            self.handle_arrival(&mut state, event.function, event.timestamp_ms);
        }
        // Cross the boundaries the arrivals never reached — the threaded
        // sync needs every shard to complete the full sequence even if its
        // stream ran dry early.
        while let Some(b) = next_boundary {
            self.cross_boundary(&mut state, b, duration, sync);
            next_boundary = next_boundary_after(b, epoch, duration);
        }
        // Drain the remaining internal events (completions and expiries at
        // or past the final boundary) against the frozen final snapshot.
        while let Some((t, e)) = state.queue.pop() {
            self.handle_internal(&mut state, t, e, duration);
        }
        // Terminate anything still alive at the end of the horizon. Arena
        // slot order is deterministic, so this walk is too.
        let live: Vec<PodIdx> = state.pods.live_indices().collect();
        for pod_idx in live {
            state.finalize_pod(pod_idx, duration);
        }
        state.into_outcome()
    }

    /// Crosses one epoch boundary: drains internal events strictly before
    /// it, posts the shard's delta, and installs the reconciled snapshot.
    fn cross_boundary(
        &mut self,
        state: &mut SimState<'_>,
        boundary: u64,
        duration: u64,
        sync: &mut dyn EpochSync,
    ) {
        if boundary > 0 {
            while let Some((t, e)) = state.queue.pop_due(boundary - 1) {
                self.handle_internal(state, t, e, duration);
            }
        }
        let delta = state.take_delta();
        let snapshot = sync.reconcile(boundary, delta);
        state.begin_epoch(snapshot);
    }

    fn handle_internal(&mut self, state: &mut SimState<'_>, t: u64, event: Event, duration: u64) {
        match event {
            Event::RequestComplete { pod, busy_ms } => {
                state.complete_request(pod, t, busy_ms, self.keep_alive.as_ref())
            }
            Event::PodExpire { pod, generation } => state.expire_pod(pod, t, generation),
            Event::DelayedArrival { function } => {
                // Admission and history were handled when the request first
                // arrived; the delayed re-entry dispatches directly.
                state.dispatch(function, t, self.keep_alive.as_ref());
            }
            Event::PrewarmTick => {
                if t <= duration {
                    // A no-op policy never reads the view and never pre-warms:
                    // skip building the (expensive) whole-platform snapshot.
                    // The recent-arrival reset and the reschedule still run —
                    // admission policies observe those counters.
                    if !self.prewarm.is_noop() {
                        let view = state.platform_view(t);
                        let requests = self.prewarm.prewarm(&view);
                        for req in requests {
                            if let Some(idx) = state.resolve(req.function) {
                                for _ in 0..req.count {
                                    state.prewarm_pod(idx, t, self.keep_alive.as_ref());
                                }
                            }
                        }
                    }
                    state.reset_recent_arrivals();
                    state.queue.push(
                        tick_after(t, self.config.prewarm_interval_ms),
                        Event::PrewarmTick,
                    );
                }
            }
        }
    }

    /// Handles one external arrival: resolve the public function id to its
    /// local index (the only hash lookup on the arrival path), record it,
    /// run admission control, and dispatch.
    fn handle_arrival(&mut self, state: &mut SimState<'_>, function: FunctionId, t: u64) {
        let Some(idx) = state.resolve(function) else {
            // Unknown function (possible with hand-written replay traces):
            // its history is tracked, nothing is dispatched.
            state.observe_unknown_arrival(function, t);
            return;
        };
        state.observe_arrival(idx, t);
        // A no-op admission policy never delays anything: skip assembling
        // the per-function view (a pure read) and the synchronicity check.
        if !self.admission.is_noop() {
            let view = state.function_view(idx, t);
            if view.trigger.synchronicity() == fntrace::Synchronicity::Asynchronous {
                let delay = self.admission.delay_ms(&view, t);
                if delay > 0 {
                    state.report.delayed_requests += 1;
                    let delay_s = delay as f64 / 1e3;
                    state.accum[idx.index()].admission_delay_s += delay_s;
                    state.accum[idx.index()].added_latency_s += delay_s;
                    state
                        .queue
                        .push(t + delay, Event::DelayedArrival { function: idx });
                    return;
                }
            }
        }
        state.dispatch(idx, t, self.keep_alive.as_ref());
    }
}

/// Schedule time of the next periodic tick after `now`.
///
/// Every periodic tick — initial or rescheduled — goes through this one
/// helper, so a zero interval can never schedule a tick at the current
/// instant and loop forever: the period is clamped to one millisecond.
pub(crate) fn tick_after(now: u64, interval_ms: u64) -> u64 {
    now + interval_ms.max(1)
}

/// The epoch boundary after `boundary`, if any: multiples of `epoch` clipped
/// to `duration`, which is always the final boundary.
pub(crate) fn next_boundary_after(boundary: u64, epoch: u64, duration: u64) -> Option<u64> {
    if boundary >= duration {
        None
    } else {
        Some((boundary + epoch).min(duration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::SimulationSpec;
    use faas_workload::population::PopulationConfig;
    use faas_workload::profile::{Calibration, RegionProfile};
    use faas_workload::StreamedWorkload;

    fn tiny_workload(seed: u64) -> WorkloadSpec {
        WorkloadSpec::generate(
            &RegionProfile::r2(),
            Calibration {
                duration_days: 1,
                ..Calibration::default()
            },
            &PopulationConfig {
                function_scale: 0.002,
                volume_scale: 2.0e-6,
                max_requests_per_day: 2_000.0,
                min_functions: 15,
            },
            seed,
        )
    }

    #[test]
    fn ticks_are_always_scheduled_strictly_in_the_future() {
        assert_eq!(tick_after(0, 0), 1);
        assert_eq!(tick_after(0, 60_000), 60_000);
        assert_eq!(tick_after(500, 0), 501);
        assert_eq!(tick_after(500, 250), 750);
    }

    #[test]
    fn boundary_sequence_covers_the_horizon_exactly_once() {
        let walk = |epoch: u64, duration: u64| {
            let mut seen = Vec::new();
            let mut next = Some(epoch.max(1).min(duration));
            while let Some(b) = next {
                seen.push(b);
                next = next_boundary_after(b, epoch.max(1), duration);
            }
            seen
        };
        assert_eq!(
            walk(60_000, 250_000),
            vec![60_000, 120_000, 180_000, 240_000, 250_000]
        );
        assert_eq!(
            walk(60_000, 240_000),
            vec![60_000, 120_000, 180_000, 240_000]
        );
        assert_eq!(walk(60_000, 30_000), vec![30_000]);
        assert_eq!(walk(60_000, 0), vec![0]);
        // The sequence depends only on (epoch, duration): every shard of a
        // run derives the identical sequence, which the barrier sync needs.
    }

    #[test]
    fn zero_tick_intervals_behave_exactly_like_one_millisecond() {
        // Regression test: the initial PrewarmTick used to be pushed at the
        // raw interval while reschedules clamped to >= 1 ms, so a zero
        // interval fired its first tick at t = 0 and every later one on the
        // clamped cadence. Both now route through `tick_after`, making a
        // zero interval indistinguishable from the 1 ms it is clamped to.
        // The replenish interval is boundary-quantized the same way: zero
        // and one millisecond run the same number of intervals per epoch.
        let workload = tiny_workload(41);
        let cut = workload
            .events
            .iter()
            .take_while(|e| e.timestamp_ms < 5_000)
            .count();
        let run_with = |prewarm_ms: u64, replenish_ms: u64| {
            let mut config = PlatformConfig {
                record_trace: false,
                ..PlatformConfig::default()
            };
            config.prewarm_interval_ms = prewarm_ms;
            config.pool.replenish_interval_ms = replenish_ms;
            let spec = SimulationSpec::new().with_config(config);
            let stream = SliceStream::new(&workload.events[..cut], 5_000);
            spec.engine(&workload).run_streamed(&workload, stream).0
        };
        let zero = run_with(0, 0);
        let one = run_with(1, 1);
        assert_eq!(zero, one);
        assert_eq!(zero.events_processed, cut as u64);
    }

    #[test]
    fn streamed_and_materialised_runs_are_identical() {
        let seed = 17;
        let workload = tiny_workload(seed);
        let streamed = StreamedWorkload::generate(
            &RegionProfile::r2(),
            Calibration {
                duration_days: 1,
                ..Calibration::default()
            },
            &PopulationConfig {
                function_scale: 0.002,
                volume_scale: 2.0e-6,
                max_requests_per_day: 2_000.0,
                min_functions: 15,
            },
            seed,
        );
        let spec = SimulationSpec::new().with_seed(3);
        let (eager, eager_trace) = spec.run(&workload);
        let (lazy, lazy_trace) = spec
            .engine(streamed.header())
            .run_streamed(streamed.header(), streamed.stream());
        assert_eq!(eager, lazy);
        assert_eq!(eager_trace, lazy_trace);
        assert_eq!(eager.events_processed, workload.events.len() as u64);
    }
}

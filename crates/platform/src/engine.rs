//! The discrete-event simulation loop.
//!
//! [`SimulationEngine`] owns one run's policies and drives a
//! [`SimState`] through a workload: arrivals,
//! completions, keep-alive expiries, pre-warm and pool-replenish ticks, and
//! admission-control delays. Engines are single-use by design — they are
//! stamped out either by the compatibility [`Simulator`](crate::Simulator)
//! builder or, for replicated experiment runs, by a
//! [`SimulationSpec`](crate::SimulationSpec) whose policy factory builds a
//! fresh set of policies per run.

use faas_workload::WorkloadSpec;
use fntrace::{FunctionId, PodId, RegionTrace};

use crate::config::PlatformConfig;
use crate::event::Event;
use crate::keepalive::KeepAlivePolicy;
use crate::policy::{AdmissionPolicy, PrewarmPolicy};
use crate::report::SimReport;
use crate::state::SimState;

/// Single-use discrete-event engine for one region replay.
pub struct SimulationEngine {
    config: PlatformConfig,
    keep_alive: Box<dyn KeepAlivePolicy>,
    prewarm: Box<dyn PrewarmPolicy>,
    admission: Box<dyn AdmissionPolicy>,
    seed: u64,
}

impl SimulationEngine {
    /// Assembles an engine from a configuration, one policy of each kind, and
    /// the random seed of this run.
    pub fn new(
        config: PlatformConfig,
        keep_alive: Box<dyn KeepAlivePolicy>,
        prewarm: Box<dyn PrewarmPolicy>,
        admission: Box<dyn AdmissionPolicy>,
        seed: u64,
    ) -> Self {
        Self {
            config,
            keep_alive,
            prewarm,
            admission,
            seed,
        }
    }

    /// Runs the workload, returning the report and, when trace recording is
    /// enabled, the full simulated region trace.
    pub fn run(mut self, workload: &WorkloadSpec) -> (SimReport, Option<RegionTrace>) {
        let mut state = SimState::new(workload, &self.config, self.seed);
        let duration = workload.duration_ms();

        // Initial periodic ticks.
        state
            .queue
            .push(self.config.prewarm_interval_ms, Event::PrewarmTick);
        state.queue.push(
            self.config.pool.replenish_interval_ms.max(1),
            Event::PoolReplenishTick,
        );

        for event in &workload.events {
            while let Some((t, e)) = state.queue.pop_due(event.timestamp_ms) {
                self.handle_internal(&mut state, t, e, duration);
            }
            self.handle_arrival(&mut state, event.function, event.timestamp_ms, true);
        }
        // Drain the remaining internal events (completions, expiries, final
        // ticks). Periodic ticks are not rescheduled past the duration.
        while let Some((t, e)) = state.queue.pop() {
            self.handle_internal(&mut state, t, e, duration);
        }
        // Terminate anything still alive at the end of the horizon, and
        // settle the pools' idle-memory integral up to it.
        let live: Vec<PodId> = state.pods.keys().copied().collect();
        for pod_id in live {
            state.finalize_pod(pod_id, duration);
        }
        state.pools.integrate_to(duration);

        state.into_report(
            self.keep_alive.name(),
            self.prewarm.name(),
            self.admission.name(),
        )
    }

    fn handle_internal(&mut self, state: &mut SimState<'_>, t: u64, event: Event, duration: u64) {
        match event {
            Event::RequestComplete { pod, busy_ms } => {
                state.complete_request(pod, t, busy_ms, self.keep_alive.as_ref())
            }
            Event::PodExpire { pod, generation } => state.expire_pod(pod, t, generation),
            Event::DelayedArrival { function } => {
                self.handle_arrival(state, function, t, false);
            }
            Event::PrewarmTick => {
                if t <= duration {
                    let view = state.platform_view(t);
                    let requests = self.prewarm.prewarm(&view);
                    for req in requests {
                        for _ in 0..req.count {
                            state.prewarm_pod(req.function, t, self.keep_alive.as_ref());
                        }
                    }
                    state.reset_recent_arrivals();
                    state.queue.push(
                        t + self.config.prewarm_interval_ms.max(1),
                        Event::PrewarmTick,
                    );
                }
            }
            Event::PoolReplenishTick => {
                if t <= duration {
                    state.pools.replenish(t);
                    state.queue.push(
                        t + self.config.pool.replenish_interval_ms.max(1),
                        Event::PoolReplenishTick,
                    );
                }
            }
        }
    }

    fn handle_arrival(
        &mut self,
        state: &mut SimState<'_>,
        function: FunctionId,
        t: u64,
        allow_delay: bool,
    ) {
        if allow_delay {
            state.observe_arrival(function, t);
            let view = state.function_view(function, t);
            if let Some(view) = view {
                if view.trigger.synchronicity() == fntrace::Synchronicity::Asynchronous {
                    let delay = self.admission.delay_ms(&view, t);
                    if delay > 0 {
                        state.report.delayed_requests += 1;
                        state.report.total_admission_delay_s += delay as f64 / 1e3;
                        state.added_latency_s += delay as f64 / 1e3;
                        state
                            .queue
                            .push(t + delay, Event::DelayedArrival { function });
                        return;
                    }
                }
            }
        }
        state.dispatch(function, t, self.keep_alive.as_ref());
    }
}

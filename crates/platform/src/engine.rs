//! The discrete-event simulation loop.
//!
//! [`SimulationEngine`] owns one run's policies and drives a
//! [`SimState`] through a workload: arrivals,
//! completions, keep-alive expiries, pre-warm and pool-replenish ticks, and
//! admission-control delays. Engines are single-use by design — they are
//! stamped out either by the compatibility [`Simulator`](crate::Simulator)
//! builder or, for replicated experiment runs, by a
//! [`SimulationSpec`](crate::SimulationSpec) whose policy factory builds a
//! fresh set of policies per run.
//!
//! The primary entry point is [`SimulationEngine::run_streamed`], which
//! consumes any [`ArrivalStream`] — arrivals are pulled one at a time, so
//! memory stays proportional to the live simulation state (pods, queue,
//! histories) rather than the event count. [`SimulationEngine::run`] is a
//! thin adapter that wraps a materialised spec's event slice in a
//! [`SliceStream`] and feeds it to the same loop.

use faas_workload::stream::{ArrivalStream, SliceStream};
use faas_workload::WorkloadSpec;
use fntrace::{FunctionId, RegionTrace};

use crate::arena::PodIdx;
use crate::config::PlatformConfig;
use crate::event::Event;
use crate::keepalive::KeepAlivePolicy;
use crate::policy::{AdmissionPolicy, PrewarmPolicy};
use crate::report::SimReport;
use crate::state::SimState;

/// Single-use discrete-event engine for one region replay.
pub struct SimulationEngine {
    config: PlatformConfig,
    keep_alive: Box<dyn KeepAlivePolicy>,
    prewarm: Box<dyn PrewarmPolicy>,
    admission: Box<dyn AdmissionPolicy>,
    seed: u64,
}

impl SimulationEngine {
    /// Assembles an engine from a configuration, one policy of each kind, and
    /// the random seed of this run.
    pub fn new(
        config: PlatformConfig,
        keep_alive: Box<dyn KeepAlivePolicy>,
        prewarm: Box<dyn PrewarmPolicy>,
        admission: Box<dyn AdmissionPolicy>,
        seed: u64,
    ) -> Self {
        Self {
            config,
            keep_alive,
            prewarm,
            admission,
            seed,
        }
    }

    /// Runs a materialised workload, returning the report and, when trace
    /// recording is enabled, the full simulated region trace.
    ///
    /// Thin adapter over [`run_streamed`](Self::run_streamed): the spec's
    /// event slice is wrapped in a [`SliceStream`], so the eager and
    /// streaming paths share one event loop and produce identical reports
    /// for identical event sequences.
    pub fn run(self, workload: &WorkloadSpec) -> (SimReport, Option<RegionTrace>) {
        let stream = SliceStream::new(&workload.events, workload.duration_ms());
        self.run_streamed(workload, stream)
    }

    /// Runs the engine over a lazily produced [`ArrivalStream`].
    ///
    /// `workload` supplies the static tables (function specs, profile,
    /// calibration, region); its `events` field is **ignored** — the stream
    /// is the event source, which is what lets multi-day horizons run
    /// without ever materialising their event list. The number of events
    /// consumed is recorded in
    /// [`SimReport::events_processed`](crate::SimReport).
    ///
    /// # Example
    ///
    /// ```
    /// use faas_platform::SimulationSpec;
    /// use faas_workload::population::PopulationConfig;
    /// use faas_workload::profile::{Calibration, RegionProfile};
    /// use faas_workload::StreamedWorkload;
    ///
    /// let workload = StreamedWorkload::generate(
    ///     &RegionProfile::r2(),
    ///     Calibration { duration_days: 1, ..Calibration::default() },
    ///     &PopulationConfig {
    ///         function_scale: 0.002,
    ///         volume_scale: 2.0e-6,
    ///         max_requests_per_day: 2_000.0,
    ///         min_functions: 15,
    ///     },
    ///     7,
    /// );
    /// let spec = SimulationSpec::new();
    /// let engine = spec.engine(workload.header());
    /// let (report, _) = engine.run_streamed(workload.header(), workload.stream());
    /// assert!(report.requests > 0);
    /// assert_eq!(report.events_processed, report.requests);
    /// ```
    pub fn run_streamed(
        mut self,
        workload: &WorkloadSpec,
        events: impl ArrivalStream,
    ) -> (SimReport, Option<RegionTrace>) {
        let mut state = SimState::new(workload, &self.config, self.seed);
        // The stream's horizon is the simulation end: periodic ticks stop
        // rescheduling past it and surviving pods are finalised at it.
        let duration = events.horizon_ms();

        // Initial periodic ticks, scheduled exactly like their reschedules.
        state.queue.push(
            tick_after(0, self.config.prewarm_interval_ms),
            Event::PrewarmTick,
        );
        state.queue.push(
            tick_after(0, self.config.pool.replenish_interval_ms),
            Event::PoolReplenishTick,
        );

        for event in events {
            state.report.events_processed += 1;
            while let Some((t, e)) = state.queue.pop_due(event.timestamp_ms) {
                self.handle_internal(&mut state, t, e, duration);
            }
            self.handle_arrival(&mut state, event.function, event.timestamp_ms);
        }
        // Drain the remaining internal events (completions, expiries, final
        // ticks). Periodic ticks are not rescheduled past the duration.
        while let Some((t, e)) = state.queue.pop() {
            self.handle_internal(&mut state, t, e, duration);
        }
        // Terminate anything still alive at the end of the horizon, and
        // settle the pools' idle-memory integral up to it. Arena slot order
        // is deterministic, so this walk is too.
        let live: Vec<PodIdx> = state.pods.live_indices().collect();
        for pod_idx in live {
            state.finalize_pod(pod_idx, duration);
        }
        state.pools.integrate_to(duration);

        state.into_report(
            self.keep_alive.name(),
            self.prewarm.name(),
            self.admission.name(),
        )
    }

    fn handle_internal(&mut self, state: &mut SimState<'_>, t: u64, event: Event, duration: u64) {
        match event {
            Event::RequestComplete { pod, busy_ms } => {
                state.complete_request(pod, t, busy_ms, self.keep_alive.as_ref())
            }
            Event::PodExpire { pod, generation } => state.expire_pod(pod, t, generation),
            Event::DelayedArrival { function } => {
                // Admission and history were handled when the request first
                // arrived; the delayed re-entry dispatches directly.
                state.dispatch(function, t, self.keep_alive.as_ref());
            }
            Event::PrewarmTick => {
                if t <= duration {
                    // A no-op policy never reads the view and never pre-warms:
                    // skip building the (expensive) whole-platform snapshot.
                    // The recent-arrival reset and the reschedule still run —
                    // admission policies observe those counters.
                    if !self.prewarm.is_noop() {
                        let view = state.platform_view(t);
                        let requests = self.prewarm.prewarm(&view);
                        for req in requests {
                            if let Some(idx) = state.resolve(req.function) {
                                for _ in 0..req.count {
                                    state.prewarm_pod(idx, t, self.keep_alive.as_ref());
                                }
                            }
                        }
                    }
                    state.reset_recent_arrivals();
                    state.queue.push(
                        tick_after(t, self.config.prewarm_interval_ms),
                        Event::PrewarmTick,
                    );
                }
            }
            Event::PoolReplenishTick => {
                if t <= duration {
                    state.pools.replenish(t);
                    state.queue.push(
                        tick_after(t, self.config.pool.replenish_interval_ms),
                        Event::PoolReplenishTick,
                    );
                }
            }
        }
    }

    /// Handles one external arrival: resolve the public function id to its
    /// dense index (the only hash lookup on the arrival path), record it,
    /// run admission control, and dispatch.
    fn handle_arrival(&mut self, state: &mut SimState<'_>, function: FunctionId, t: u64) {
        let Some(idx) = state.resolve(function) else {
            // Unknown function (possible with hand-written replay traces):
            // its history is tracked, nothing is dispatched.
            state.observe_unknown_arrival(function, t);
            return;
        };
        state.observe_arrival(idx, t);
        // A no-op admission policy never delays anything: skip assembling
        // the per-function view (a pure read) and the synchronicity check.
        if !self.admission.is_noop() {
            let view = state.function_view(idx, t);
            if view.trigger.synchronicity() == fntrace::Synchronicity::Asynchronous {
                let delay = self.admission.delay_ms(&view, t);
                if delay > 0 {
                    state.report.delayed_requests += 1;
                    state.report.total_admission_delay_s += delay as f64 / 1e3;
                    state.added_latency_s += delay as f64 / 1e3;
                    state
                        .queue
                        .push(t + delay, Event::DelayedArrival { function: idx });
                    return;
                }
            }
        }
        state.dispatch(idx, t, self.keep_alive.as_ref());
    }
}

/// Schedule time of the next periodic tick after `now`.
///
/// Every periodic tick — initial or rescheduled, pre-warm or pool-replenish
/// — goes through this one helper, so a zero interval can never schedule a
/// tick at the current instant and loop forever: the period is clamped to
/// one millisecond.
fn tick_after(now: u64, interval_ms: u64) -> u64 {
    now + interval_ms.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::SimulationSpec;
    use faas_workload::population::PopulationConfig;
    use faas_workload::profile::{Calibration, RegionProfile};
    use faas_workload::StreamedWorkload;

    fn tiny_workload(seed: u64) -> WorkloadSpec {
        WorkloadSpec::generate(
            &RegionProfile::r2(),
            Calibration {
                duration_days: 1,
                ..Calibration::default()
            },
            &PopulationConfig {
                function_scale: 0.002,
                volume_scale: 2.0e-6,
                max_requests_per_day: 2_000.0,
                min_functions: 15,
            },
            seed,
        )
    }

    #[test]
    fn ticks_are_always_scheduled_strictly_in_the_future() {
        assert_eq!(tick_after(0, 0), 1);
        assert_eq!(tick_after(0, 60_000), 60_000);
        assert_eq!(tick_after(500, 0), 501);
        assert_eq!(tick_after(500, 250), 750);
    }

    #[test]
    fn zero_tick_intervals_behave_exactly_like_one_millisecond() {
        // Regression test: the initial PrewarmTick used to be pushed at the
        // raw interval while reschedules clamped to >= 1 ms, so a zero
        // interval fired its first tick at t = 0 and every later one on the
        // clamped cadence. Both now route through `tick_after`, making a
        // zero interval indistinguishable from the 1 ms it is clamped to.
        let workload = tiny_workload(41);
        // A short horizon keeps the per-millisecond tick cadence cheap.
        let cut = workload
            .events
            .iter()
            .take_while(|e| e.timestamp_ms < 5_000)
            .count();
        let run_with = |prewarm_ms: u64, replenish_ms: u64| {
            let mut config = PlatformConfig {
                record_trace: false,
                ..PlatformConfig::default()
            };
            config.prewarm_interval_ms = prewarm_ms;
            config.pool.replenish_interval_ms = replenish_ms;
            let spec = SimulationSpec::new().with_config(config);
            let stream = SliceStream::new(&workload.events[..cut], 5_000);
            spec.engine(&workload).run_streamed(&workload, stream).0
        };
        let zero = run_with(0, 0);
        let one = run_with(1, 1);
        assert_eq!(zero, one);
        assert_eq!(zero.events_processed, cut as u64);
    }

    #[test]
    fn streamed_and_materialised_runs_are_identical() {
        let seed = 17;
        let workload = tiny_workload(seed);
        let streamed = StreamedWorkload::generate(
            &RegionProfile::r2(),
            Calibration {
                duration_days: 1,
                ..Calibration::default()
            },
            &PopulationConfig {
                function_scale: 0.002,
                volume_scale: 2.0e-6,
                max_requests_per_day: 2_000.0,
                min_functions: 15,
            },
            seed,
        );
        let spec = SimulationSpec::new().with_seed(3);
        let (eager, eager_trace) = spec.run(&workload);
        let (lazy, lazy_trace) = spec
            .engine(streamed.header())
            .run_streamed(streamed.header(), streamed.stream());
        assert_eq!(eager, lazy);
        assert_eq!(eager_trace, lazy_trace);
        assert_eq!(eager.events_processed, workload.events.len() as u64);
    }
}

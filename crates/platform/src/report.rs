//! Simulation outcome reporting.

use serde::{Deserialize, Serialize};

use faas_stats::Ecdf;
use fntrace::FunctionId;

/// Latency distribution summary (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Number of observations.
    pub count: u64,
    /// Mean in seconds.
    pub mean_s: f64,
    /// Median in seconds.
    pub p50_s: f64,
    /// 95th percentile in seconds.
    pub p95_s: f64,
    /// 99th percentile in seconds.
    pub p99_s: f64,
    /// Maximum in seconds.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes the summary from raw latencies in seconds. Returns an
    /// all-zero summary for an empty input.
    pub fn from_secs(values: &[f64]) -> Self {
        match Ecdf::from_slice(values) {
            Ok(ecdf) => Self {
                count: values.len() as u64,
                mean_s: ecdf.mean(),
                p50_s: ecdf.quantile(0.5),
                p95_s: ecdf.quantile(0.95),
                p99_s: ecdf.quantile(0.99),
                max_s: ecdf.max(),
            },
            Err(_) => Self::default(),
        }
    }
}

/// Summed per-component cold-start times, in microseconds.
///
/// Components follow the paper's decomposition (pod allocation, code
/// deployment, dependency deployment, scheduling). Each charged cold start
/// contributes its exact integer component samples, so
/// [`total_us`](Self::total_us) — a plain `u64` sum — always equals the sum
/// of the individual cold-start totals: the attribution block is exact, not
/// an estimate. With the node layer enabled the dependency component is the
/// explicit layer-pull time (zero on cache hits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ComponentTotals {
    /// Pod allocation time, microseconds.
    pub pod_alloc_us: u64,
    /// Code deployment time, microseconds.
    pub deploy_code_us: u64,
    /// Dependency deployment (layer pull) time, microseconds.
    pub deploy_dep_us: u64,
    /// Scheduling time, microseconds.
    pub scheduling_us: u64,
}

impl ComponentTotals {
    /// Exact sum of the four components.
    pub fn total_us(&self) -> u64 {
        self.pod_alloc_us + self.deploy_code_us + self.deploy_dep_us + self.scheduling_us
    }

    /// Adds another total in (commutative, so shard-merge safe).
    pub fn add(&mut self, other: &ComponentTotals) {
        self.pod_alloc_us += other.pod_alloc_us;
        self.deploy_code_us += other.deploy_code_us;
        self.deploy_dep_us += other.deploy_dep_us;
        self.scheduling_us += other.scheduling_us;
    }
}

/// Per-function request and cold-start counters.
///
/// Attributed only for replay-tagged workloads (see
/// [`faas_workload::WorkloadSource`]): replayed traces carry real function
/// identities worth reporting individually, synthetic populations do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionStats {
    /// The function the counters belong to.
    pub function: FunctionId,
    /// Requests observed for the function.
    pub requests: u64,
    /// Cold starts charged to the function.
    pub cold_starts: u64,
    /// Per-component time attribution of the function's charged cold
    /// starts; `components.total_us()` is exactly their summed latency.
    pub components: ComponentTotals,
}

/// Aggregate outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimReport {
    /// Arrival events pulled from the workload stream. Matches `requests`
    /// whenever every event references a known function; kept separately so
    /// streaming throughput (events/second) is measured against what the
    /// engine actually consumed.
    pub events_processed: u64,
    /// Requests admitted and executed.
    pub requests: u64,
    /// Requests served by an already warm pod.
    pub warm_starts: u64,
    /// Requests that triggered a cold start.
    pub cold_starts: u64,
    /// Pods created by the pre-warm policy.
    pub prewarmed_pods: u64,
    /// Pre-warmed pods that served at least one request before expiring.
    pub prewarmed_pods_used: u64,
    /// Pods created from the resource pool.
    pub pool_hits: u64,
    /// Pods created from scratch because no pooled pod was available.
    pub scratch_creations: u64,
    /// Requests delayed by the admission (peak shaving) policy.
    pub delayed_requests: u64,
    /// Total delay added by the admission policy, in seconds.
    pub total_admission_delay_s: f64,
    /// Cold-start latency distribution (user-visible cold starts only).
    pub cold_start_latency: LatencyStats,
    /// Per-component attribution of all charged cold starts, microseconds.
    /// Exact: `cold_components.total_us() == cold_us_total` always.
    pub cold_components: ComponentTotals,
    /// Total charged cold-start latency in microseconds — the integer sum of
    /// every charged cold start's component sum.
    pub cold_us_total: u64,
    /// Dependency layers pulled onto nodes, counting cold-start and
    /// pre-warm pod creations alike (node model only; zero otherwise).
    pub layer_pulls: u64,
    /// Pod creations whose dependency layer was already cached on the
    /// chosen node (node model only; zero otherwise).
    pub layer_cache_hits: u64,
    /// End-to-end latency added on top of execution time (cold start plus
    /// admission delay), averaged over all requests, in seconds.
    pub mean_added_latency_s: f64,
    /// Total pod lifetime across all pods, in pod-seconds.
    pub pod_lifetime_s: f64,
    /// Total pod time spent idle in keep-alive, in pod-seconds (wasted
    /// capacity the pool-prediction and keep-alive policies try to reduce).
    pub idle_pod_time_s: f64,
    /// Memory held by idle pods integrated over their idle time, in
    /// GB-seconds. This is the cost axis the parameter sweeps trade against
    /// the cold-start rate: keeping pods warm longer reduces cold starts but
    /// grows this number.
    pub mem_gb_s_wasted: f64,
    /// Peak number of simultaneously live pods.
    pub peak_live_pods: u32,
    /// Per-function cold-start attribution, sorted by function id. Populated
    /// only when the workload is replay-tagged; empty for synthetic runs.
    pub per_function: Vec<FunctionStats>,
    /// Name of the keep-alive policy used.
    pub keep_alive_policy: String,
    /// Name of the pre-warm policy used.
    pub prewarm_policy: String,
    /// Name of the admission policy used.
    pub admission_policy: String,
}

impl SimReport {
    /// Fraction of requests that suffered a cold start.
    pub fn cold_start_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.requests as f64
        }
    }

    /// Fraction of pod lifetime spent idle.
    pub fn idle_fraction(&self) -> f64 {
        if self.pod_lifetime_s <= 0.0 {
            0.0
        } else {
            (self.idle_pod_time_s / self.pod_lifetime_s).clamp(0.0, 1.0)
        }
    }

    /// The `n` replay-attributed functions with the most cold starts, ties
    /// broken by function id. Empty unless the run replayed a trace.
    pub fn top_cold_start_functions(&self, n: usize) -> Vec<FunctionStats> {
        let mut ranked = self.per_function.clone();
        ranked.sort_by_key(|s| (std::cmp::Reverse(s.cold_starts), s.function));
        ranked.truncate(n);
        ranked
    }

    /// Renders a short human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "requests {:>9}  cold starts {:>8} ({:>5.1}%)  warm {:>9}  prewarmed {:>6} (used {})\n\
             cold start p50/p95/p99 {:.3}/{:.3}/{:.3} s  mean added latency {:.4} s\n\
             cold components (s): alloc {:.3}  code {:.3}  dep {:.3}  sched {:.3}  layer pulls {} (hits {})\n\
             pods: pool hits {}  scratch {}  peak live {}  idle fraction {:.1}%  mem waste {:.1} GB-s\n\
             policies: keep-alive={} prewarm={} admission={}",
            self.requests,
            self.cold_starts,
            100.0 * self.cold_start_rate(),
            self.warm_starts,
            self.prewarmed_pods,
            self.prewarmed_pods_used,
            self.cold_start_latency.p50_s,
            self.cold_start_latency.p95_s,
            self.cold_start_latency.p99_s,
            self.mean_added_latency_s,
            self.cold_components.pod_alloc_us as f64 / 1e6,
            self.cold_components.deploy_code_us as f64 / 1e6,
            self.cold_components.deploy_dep_us as f64 / 1e6,
            self.cold_components.scheduling_us as f64 / 1e6,
            self.layer_pulls,
            self.layer_cache_hits,
            self.pool_hits,
            self.scratch_creations,
            self.peak_live_pods,
            100.0 * self.idle_fraction(),
            self.mem_gb_s_wasted,
            self.keep_alive_policy,
            self.prewarm_policy,
            self.admission_policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_values() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let stats = LatencyStats::from_secs(&values);
        assert_eq!(stats.count, 100);
        assert!((stats.mean_s - 0.505).abs() < 1e-9);
        assert!((stats.p50_s - 0.5).abs() < 1e-9);
        assert!((stats.p95_s - 0.95).abs() < 1e-9);
        assert!((stats.max_s - 1.0).abs() < 1e-9);
        let empty = LatencyStats::from_secs(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean_s, 0.0);
    }

    #[test]
    fn report_rates() {
        let mut r = SimReport {
            requests: 1000,
            cold_starts: 250,
            ..SimReport::default()
        };
        assert!((r.cold_start_rate() - 0.25).abs() < 1e-12);
        r.pod_lifetime_s = 200.0;
        r.idle_pod_time_s = 50.0;
        assert!((r.idle_fraction() - 0.25).abs() < 1e-12);
        let empty = SimReport::default();
        assert_eq!(empty.cold_start_rate(), 0.0);
        assert_eq!(empty.idle_fraction(), 0.0);
        let text = r.render();
        assert!(text.contains("cold starts"));
        assert!(text.contains("25.0%"));
        assert!(text.contains("cold components"));
    }

    #[test]
    fn component_totals_sum_exactly_and_commute() {
        let a = ComponentTotals {
            pod_alloc_us: 1,
            deploy_code_us: 2,
            deploy_dep_us: 3,
            scheduling_us: 4,
        };
        let b = ComponentTotals {
            pod_alloc_us: 10,
            deploy_code_us: 0,
            deploy_dep_us: 7,
            scheduling_us: 5,
        };
        assert_eq!(a.total_us(), 10);
        let mut ab = a;
        ab.add(&b);
        let mut ba = b;
        ba.add(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_us(), a.total_us() + b.total_us());
    }
}

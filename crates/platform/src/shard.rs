//! Epoch-quantized reconciliation of shared capacity across shards.
//!
//! A cell's functions only interact through two pieces of shared platform
//! state: the idle-pod [`ResourcePools`] and the per-cluster in-flight
//! counters ([`ClusterState`]). Everything else — per-function RNG streams,
//! histories, warm-pod lists, the timing wheel — is private to a function
//! and therefore private to whichever shard owns it. This module makes that
//! interaction *epoch-quantized*: shared state is only observed through an
//! [`EpochSnapshot`] taken at the last epoch boundary and only mutated by a
//! deterministic merge of per-shard [`ShardDelta`]s at the next boundary.
//!
//! ```text
//!   shard 0 ──events──▶ ┐                      ┌─▶ snapshot ──▶ shard 0
//!   shard 1 ──events──▶ ├─ barrier ─ ledger ───┼─▶ snapshot ──▶ shard 1
//!   shard n ──events──▶ ┘   (merge by shard id)└─▶ snapshot ──▶ shard n
//!        epoch k                boundary k+1            epoch k+1
//! ```
//!
//! Because every within-epoch decision depends only on a function's own
//! state plus the epoch-start snapshot, the simulation outcome is invariant
//! in the shard count: `run_sharded(n)` equals `run_streamed` byte for byte
//! for every `n`. The single-shard engine runs the *same* epoch protocol
//! (with a trivial in-place ledger), so the equality holds by construction,
//! not by coincidence — see `SimulationSpec::run_sharded`.
//!
//! The merge itself is deterministic because every component is either a
//! commutative sum (`u64` counters, pool draws, cluster deltas, summed in
//! shard order anyway) or an explicitly ordered fold: `f64` accumulators
//! are kept per function and folded in dense table order, cold-start
//! latencies concatenate in shard order before the (sorting) distribution
//! summary, and trace tables concatenate then sort by their total
//! `(timestamp, unique id)` keys.
//!
//! The epoch model is an *approximation*, chosen deliberately: within one
//! epoch each function may draw from the pool snapshot up to the snapshot's
//! idle count, so the combined draws of many functions can oversubscribe a
//! pool; the surplus is clamped at the boundary. Cluster placement likewise
//! reacts to load with up to one epoch of lag. With the default
//! `epoch_ms == 60_000` the staleness equals the pre-warm and
//! pool-replenish cadence that already governed this state.

use std::sync::{Barrier, Mutex};

use faas_workload::WorkloadSpec;
use fntrace::{RegionTrace, ResourceConfig};

use crate::cluster::ClusterState;
use crate::config::PlatformConfig;
use crate::node::{NodeDelta, NodePool, NodeSnapshot};
use crate::pool::ResourcePools;
use crate::report::{ComponentTotals, FunctionStats, LatencyStats, SimReport};

/// Shared-capacity state as of an epoch boundary.
///
/// Shards read this — and only this — when they need pool availability,
/// cluster load, or platform-wide pod counts during an epoch. Snapshots are
/// plain data, cheap to clone per shard per epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Idle pooled pods per resource configuration, in ledger entry order.
    /// Indices align with [`ShardDelta::pool_draws`].
    pub pool_idle: Vec<(ResourceConfig, u32)>,
    /// Cluster in-flight counters as of the boundary.
    pub clusters: ClusterState,
    /// Live pods across all shards at the boundary.
    pub live_pods: u64,
    /// Node pod counts, pull pressure, and cache membership as of the
    /// boundary; present iff the node model is enabled.
    pub nodes: Option<NodeSnapshot>,
}

impl EpochSnapshot {
    /// Pool entry index and idle count for a configuration, if pooled.
    pub(crate) fn pool_slot(&self, cfg: ResourceConfig) -> Option<(usize, u32)> {
        self.pool_idle
            .iter()
            .position(|&(c, _)| c == cfg)
            .map(|i| (i, self.pool_idle[i].1))
    }

    /// Total idle pooled pods at the boundary.
    pub(crate) fn pooled_idle(&self) -> u32 {
        self.pool_idle.iter().map(|&(_, idle)| idle).sum()
    }
}

/// One shard's contribution to shared state over one epoch.
///
/// All fields are commutative aggregates, so summing the deltas of all
/// shards — in any order — before applying them to the ledger yields one
/// well-defined boundary state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardDelta {
    /// Pods drawn from each pool entry during the epoch, aligned with
    /// [`EpochSnapshot::pool_idle`].
    pub pool_draws: Vec<u64>,
    /// Net in-flight change per cluster (begins minus completes).
    pub cluster_delta: Vec<i64>,
    /// Pods live on the shard at the boundary instant.
    pub live_pods: u64,
    /// Node-state contribution (pod deltas, pull records); present iff the
    /// node model is enabled.
    pub node: Option<NodeDelta>,
}

/// The authoritative shared state, advanced once per epoch boundary.
///
/// One ledger exists per run (not per shard). At each boundary it settles
/// the epoch's pool draws, runs any replenish intervals that became due,
/// applies the net cluster deltas, and samples the platform-wide live-pod
/// peak. Between boundaries it is immutable, which is what lets shards run
/// an epoch without synchronization.
#[derive(Debug)]
pub struct EpochLedger {
    pools: ResourcePools,
    clusters: ClusterState,
    nodes: Option<NodePool>,
    replenish_interval_ms: u64,
    last_replenish_ms: u64,
    last_live_pods: u64,
    peak_live_pods: u64,
}

impl EpochLedger {
    /// Creates the run's ledger from the platform configuration.
    pub fn new(config: &PlatformConfig) -> Self {
        Self {
            pools: ResourcePools::new(config.pool.clone()),
            clusters: ClusterState::new(config.clusters, config.hot_spot_threshold),
            nodes: config
                .node
                .as_ref()
                .map(|nc| NodePool::new(nc, config.clusters)),
            replenish_interval_ms: config.pool.replenish_interval_ms,
            last_replenish_ms: 0,
            last_live_pods: 0,
            peak_live_pods: 0,
        }
    }

    /// The snapshot shards observe until the next boundary. Live pods are
    /// not tracked incrementally; the count is the sum the shards posted at
    /// the previous boundary.
    pub fn snapshot(&self) -> EpochSnapshot {
        EpochSnapshot {
            pool_idle: self.pools.snapshot_idle(),
            clusters: self.clusters.clone(),
            live_pods: self.last_live_pods,
            nodes: self.nodes.as_ref().map(NodePool::snapshot),
        }
    }

    /// Settles one boundary: applies the shards' deltas (in shard-id order,
    /// though every operation is commutative), runs due replenish intervals,
    /// and samples the live-pod peak.
    pub fn reconcile<'a>(
        &mut self,
        boundary_ms: u64,
        deltas: impl IntoIterator<Item = &'a ShardDelta>,
    ) {
        let mut draws = vec![0u64; self.pools.snapshot_idle().len()];
        let mut cluster = vec![0i64; usize::from(self.clusters.clusters())];
        let mut live = 0u64;
        let mut node_deltas: Vec<&NodeDelta> = Vec::new();
        for d in deltas {
            for (acc, &x) in draws.iter_mut().zip(&d.pool_draws) {
                *acc += x;
            }
            for (acc, &x) in cluster.iter_mut().zip(&d.cluster_delta) {
                *acc += x;
            }
            live += d.live_pods;
            node_deltas.extend(d.node.as_ref());
        }
        // Draws settle first (they happened during the epoch), then any
        // replenish intervals that became due at or before this boundary —
        // the same order the event loop used when replenishment was a tick.
        self.pools.apply_draws(boundary_ms, &draws);
        let interval = self.replenish_interval_ms.max(1);
        if boundary_ms > self.last_replenish_ms {
            let elapsed = (boundary_ms - self.last_replenish_ms) / interval;
            if elapsed > 0 {
                self.pools.replenish_times(boundary_ms, elapsed);
                self.last_replenish_ms += elapsed * interval;
            }
        }
        self.clusters.apply_delta(&cluster);
        if let Some(pool) = self.nodes.as_mut() {
            pool.apply(boundary_ms, node_deltas.iter().copied());
        }
        self.last_live_pods = live;
        self.peak_live_pods = self.peak_live_pods.max(live);
    }

    /// Consumes the ledger after the final boundary, yielding the pools
    /// (for their memory-waste integral) and the sampled live-pod peak.
    pub(crate) fn into_parts(self) -> (ResourcePools, u64) {
        (self.pools, self.peak_live_pods)
    }
}

/// How a shard's engine reaches the ledger at each boundary.
///
/// The single-shard path ([`SequentialSync`]) and the threaded path
/// ([`SharedSync`]) implement the same protocol, which is what makes
/// `run_streamed` and `run_sharded(n)` byte-identical by construction: the
/// engine cannot tell which one it is running under.
pub(crate) trait EpochSync {
    /// Posts this shard's delta for the epoch ending at `boundary_ms` and
    /// returns the reconciled snapshot for the next epoch. Every shard of a
    /// run must call this for the same sequence of boundaries.
    fn reconcile(&mut self, boundary_ms: u64, delta: ShardDelta) -> EpochSnapshot;
}

/// In-place reconciliation for a single shard: no barrier, no locking.
pub(crate) struct SequentialSync<'a> {
    pub ledger: &'a mut EpochLedger,
}

impl EpochSync for SequentialSync<'_> {
    fn reconcile(&mut self, boundary_ms: u64, delta: ShardDelta) -> EpochSnapshot {
        self.ledger.reconcile(boundary_ms, std::iter::once(&delta));
        self.ledger.snapshot()
    }
}

/// Shared state for barrier-synchronised reconciliation across threads.
pub(crate) struct SharedEpochState {
    barrier: Barrier,
    slots: Vec<Mutex<Option<ShardDelta>>>,
    ledger: Mutex<EpochLedger>,
    published: Mutex<EpochSnapshot>,
}

impl SharedEpochState {
    pub(crate) fn new(ledger: EpochLedger, shards: usize) -> Self {
        let published = Mutex::new(ledger.snapshot());
        Self {
            barrier: Barrier::new(shards),
            slots: (0..shards).map(|_| Mutex::new(None)).collect(),
            ledger: Mutex::new(ledger),
            published,
        }
    }

    pub(crate) fn initial_snapshot(&self) -> EpochSnapshot {
        self.published.lock().expect("snapshot lock").clone()
    }

    pub(crate) fn into_ledger(self) -> EpochLedger {
        self.ledger.into_inner().expect("ledger lock")
    }
}

/// One shard's handle onto the shared epoch state.
///
/// At a boundary every shard posts its delta into its own slot and waits on
/// the barrier; one arbitrary thread (the barrier leader) drains the slots
/// in shard-id order, advances the ledger, publishes the new snapshot, and a
/// second barrier releases everyone to read it. Which thread leads is
/// irrelevant to the result because the ledger merge is commutative.
pub(crate) struct SharedSync<'a> {
    pub state: &'a SharedEpochState,
    pub shard: usize,
}

impl EpochSync for SharedSync<'_> {
    fn reconcile(&mut self, boundary_ms: u64, delta: ShardDelta) -> EpochSnapshot {
        *self.state.slots[self.shard].lock().expect("slot lock") = Some(delta);
        if self.state.barrier.wait().is_leader() {
            let deltas: Vec<ShardDelta> = self
                .state
                .slots
                .iter()
                .map(|s| s.lock().expect("slot lock").take().expect("delta posted"))
                .collect();
            let mut ledger = self.state.ledger.lock().expect("ledger lock");
            ledger.reconcile(boundary_ms, deltas.iter());
            *self.state.published.lock().expect("snapshot lock") = ledger.snapshot();
        }
        self.state.barrier.wait();
        self.state.published.lock().expect("snapshot lock").clone()
    }
}

/// Per-function floating-point accumulators.
///
/// Kept per function rather than globally so the final report can fold them
/// in dense table order, independent of how functions were interleaved
/// across shards during the run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FnAccum {
    pub pod_lifetime_s: f64,
    pub idle_pod_time_s: f64,
    pub mem_gb_s_wasted: f64,
    pub added_latency_s: f64,
    pub admission_delay_s: f64,
    /// Per-component cold-start attribution, microseconds (exact sums).
    pub cold: ComponentTotals,
    /// Total charged cold-start latency, microseconds, accumulated
    /// independently of `cold` so the components-sum invariant is a real
    /// cross-check rather than a tautology.
    pub cold_us: u64,
}

impl FnAccum {
    fn add(&mut self, other: &FnAccum) {
        self.pod_lifetime_s += other.pod_lifetime_s;
        self.idle_pod_time_s += other.idle_pod_time_s;
        self.mem_gb_s_wasted += other.mem_gb_s_wasted;
        self.added_latency_s += other.added_latency_s;
        self.admission_delay_s += other.admission_delay_s;
        self.cold.add(&other.cold);
        self.cold_us += other.cold_us;
    }
}

/// Everything a shard produces that the merge needs.
pub(crate) struct ShardOutcome {
    /// Aggregate counters; only the `u64` tallies are meaningful here — the
    /// floating-point fields are rebuilt from `accum` during the merge.
    pub report: SimReport,
    /// Dense workload-table indices of the shard's member functions,
    /// ascending; parallel to `accum`.
    pub members: Vec<u32>,
    /// Per-member floating-point accumulators.
    pub accum: Vec<FnAccum>,
    /// Cold-start latencies observed on the shard, in event order.
    pub cold_latencies_s: Vec<f64>,
    /// Per-function replay statistics (replay workloads only).
    pub per_function: Vec<FunctionStats>,
    /// The shard's slice of the trace, if tracing is enabled.
    pub trace: Option<RegionTrace>,
}

/// Folds per-shard outcomes into the run's [`SimReport`] and trace.
///
/// Deterministic in the shard count: counter sums are commutative,
/// floating-point accumulators are folded in dense table order, cold-start
/// latencies feed an order-insensitive distribution summary, and trace
/// tables are re-sorted by their total `(timestamp, unique id)` keys.
pub(crate) fn merge_outcomes(
    workload: &WorkloadSpec,
    outcomes: Vec<ShardOutcome>,
    ledger: EpochLedger,
    policy_names: (&str, &str, &str),
) -> (SimReport, Option<RegionTrace>) {
    let n = workload.functions.len();
    let mut merged = SimReport::default();
    let mut dense = vec![FnAccum::default(); n];
    let mut cold: Vec<f64> = Vec::new();
    let mut per_function: Vec<FunctionStats> = Vec::new();
    let mut trace: Option<RegionTrace> = None;

    for outcome in outcomes {
        let r = &outcome.report;
        merged.events_processed += r.events_processed;
        merged.requests += r.requests;
        merged.warm_starts += r.warm_starts;
        merged.cold_starts += r.cold_starts;
        merged.prewarmed_pods += r.prewarmed_pods;
        merged.prewarmed_pods_used += r.prewarmed_pods_used;
        merged.pool_hits += r.pool_hits;
        merged.scratch_creations += r.scratch_creations;
        merged.delayed_requests += r.delayed_requests;
        merged.layer_pulls += r.layer_pulls;
        merged.layer_cache_hits += r.layer_cache_hits;
        for (&idx, acc) in outcome.members.iter().zip(&outcome.accum) {
            dense[idx as usize].add(acc);
        }
        cold.extend_from_slice(&outcome.cold_latencies_s);
        per_function.extend(outcome.per_function);
        if let Some(shard_trace) = outcome.trace {
            // Duplicate function ids are co-sharded by construction, so the
            // metadata sets of distinct shards are disjoint and the (hash
            // map) iteration order cannot affect the merged table.
            let merged_trace = trace.get_or_insert_with(|| RegionTrace::new(workload.region));
            for meta in shard_trace.functions.iter() {
                merged_trace.functions.insert(meta.clone());
            }
            for &record in shard_trace.requests.records() {
                merged_trace.requests.push(record);
            }
            for &record in shard_trace.cold_starts.records() {
                merged_trace.cold_starts.push(record);
            }
        }
    }

    let mut added_latency_s = 0.0;
    for acc in &dense {
        merged.pod_lifetime_s += acc.pod_lifetime_s;
        merged.idle_pod_time_s += acc.idle_pod_time_s;
        merged.mem_gb_s_wasted += acc.mem_gb_s_wasted;
        merged.total_admission_delay_s += acc.admission_delay_s;
        added_latency_s += acc.added_latency_s;
        merged.cold_components.add(&acc.cold);
        merged.cold_us_total += acc.cold_us;
    }
    merged.cold_start_latency = LatencyStats::from_secs(&cold);
    merged.mean_added_latency_s = if merged.requests == 0 {
        0.0
    } else {
        added_latency_s / merged.requests as f64
    };

    let (pools, peak_live_pods) = ledger.into_parts();
    merged.peak_live_pods = u32::try_from(peak_live_pods).unwrap_or(u32::MAX);
    merged.mem_gb_s_wasted += pools.mem_gb_s();

    if workload.is_replay() {
        per_function.sort_by_key(|f| f.function);
        merged.per_function = per_function;
    }

    merged.keep_alive_policy = policy_names.0.to_string();
    merged.prewarm_policy = policy_names.1.to_string();
    merged.admission_policy = policy_names.2.to_string();

    if let Some(t) = trace.as_mut() {
        t.sort_by_time();
    }
    (merged, trace)
}

//! Mutable simulation state.
//!
//! [`SimState`] owns everything that changes while (one shard of) a workload
//! replays: the event queue, live pods, per-function histories and RNG
//! streams, the snapshot of shared capacity, and the report being
//! accumulated. The event loop in [`crate::engine`] drives it; splitting the
//! two keeps the loop readable and lets alternative drivers (the experiment
//! grid, future incremental re-simulation) reuse the state transitions
//! unchanged.
//!
//! A state covers a *shard*: a subset of the workload table identified by
//! its ascending `members` (dense global indices). The unsharded engine is
//! simply the one-shard special case where `members` is the whole table.
//! Everything per-function — specs, histories, warm-pod lists, RNG streams,
//! accumulators — is indexed by the *local* member position ([`FnIdx`]), so
//! a shard's memory is proportional to its own population, not the cell's.
//!
//! Shared capacity (resource pools, cluster load) is never touched directly:
//! the state reads the epoch-start [`EpochSnapshot`] and records its draws
//! and deltas for the boundary reconciliation (see [`crate::shard`]). All
//! randomness is drawn from per-function streams derived independently from
//! the run seed and the function's *global* index, and all public ids (pods,
//! requests) are minted from per-function counters tagged with the global
//! index — which is why nothing the state produces depends on how functions
//! were interleaved across shards.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use faas_stats::rng::Xoshiro256pp;
use faas_workload::{ColdStartLatencyModel, FunctionSpec, WorkloadSpec};
use fntrace::{
    ColdStartRecord, FunctionId, FunctionMeta, PodId, RegionTrace, RequestId, RequestRecord,
    ResourceConfig, MILLIS_PER_DAY, MILLIS_PER_HOUR,
};

use crate::arena::{FnIdx, PodArena, PodIdx};
use crate::config::PlatformConfig;
use crate::event::{Event, EventQueue};
use crate::keepalive::{FunctionHistory, KeepAlivePolicy};
use crate::node::{LayerKey, NodeDelta, PullRecord};
use crate::pod::{Pod, PodState};
use crate::policy::{FunctionView, PlatformView};
use crate::pool::PoolAcquire;
use crate::report::{ComponentTotals, FunctionStats, SimReport};
use crate::shard::{EpochSnapshot, FnAccum, ShardDelta, ShardOutcome};

/// Hasher for the arrival-path `FunctionId -> FnIdx` map.
///
/// Function ids are plain 64-bit values (hashed names or small test
/// integers), so a SplitMix64 finalizer — four multiply/xor-shift rounds
/// with full avalanche — replaces SipHash on the one lookup every external
/// arrival performs. It is keyless and deterministic, and the map is only
/// ever probed or inserted into, never iterated, so no observable order
/// depends on it.
#[derive(Clone, Copy, Default)]
pub(crate) struct FnIdHasher(u64);

impl std::hash::Hasher for FnIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic byte fallback (FNV-style); the id map only feeds u64s.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix_mix(x);
    }
}

/// SplitMix64 finalizer: a keyless, bijective 64-bit mix.
fn splitmix_mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

type FnIndexMap = HashMap<FunctionId, FnIdx, BuildHasherDefault<FnIdHasher>>;

/// Derives the simulation RNG stream of one function.
///
/// Streams are derived *independently* — run seed mixed with the function's
/// global table index — rather than forked from a parent stream, because a
/// fork advances the parent: any scheme with a sequential parent would make
/// a function's randomness depend on which functions came before it, and
/// therefore on the sharding.
fn fn_rng(seed: u64, global_idx: u32) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64((seed ^ 0x5151_5151) ^ splitmix_mix(u64::from(global_idx)))
}

/// Mutable state of one shard of one in-flight simulation run.
///
/// Everything here is owned by a single shard of a single run; the engine
/// constructs one `SimState` per shard and consumes it into a
/// `ShardOutcome`, which the merge in [`crate::shard`] folds into the
/// final report.
pub struct SimState<'a> {
    pub(crate) workload: &'a WorkloadSpec,
    pub(crate) config: PlatformConfig,
    /// Global (workload-table) index of each member, ascending; maps the
    /// local [`FnIdx`] back to the dense table position.
    pub(crate) members: Vec<u32>,
    /// Function specs by local member position.
    pub(crate) specs: Vec<&'a FunctionSpec>,
    /// Resolves a hashed function id to its local index; consulted once per
    /// external arrival, never on internal events.
    pub(crate) fn_index: FnIndexMap,
    pub(crate) latency_model: ColdStartLatencyModel,
    /// Per-member simulation RNG streams (see [`fn_rng`]).
    pub(crate) fn_rngs: Vec<Xoshiro256pp>,
    pub(crate) queue: EventQueue,
    pub(crate) pods: PodArena,
    pub(crate) warm_by_function: Vec<Vec<PodIdx>>,
    pub(crate) histories: Vec<FunctionHistory>,
    /// Histories of functions outside the workload table (replay traces can
    /// reference them); cold path, keyed by public id.
    pub(crate) extra_histories: HashMap<FunctionId, FunctionHistory>,
    pub(crate) recent_arrivals: Vec<u64>,
    /// Per-member pod-id counters; public pod ids are
    /// `(region << 48) | (global_idx << 26) | counter`, so they are unique
    /// across shards and independent of creation interleaving.
    pub(crate) pod_counters: Vec<u32>,
    /// Per-member request-id counters (advanced only when tracing); public
    /// request ids are `((global_idx + 1) << 32) | counter`.
    pub(crate) req_counters: Vec<u32>,
    pub(crate) report: SimReport,
    pub(crate) cold_latencies_s: Vec<f64>,
    /// Per-member floating-point accumulators, folded in global table order
    /// at the merge.
    pub(crate) accum: Vec<FnAccum>,
    pub(crate) trace: Option<RegionTrace>,
    /// Shared capacity as of the last epoch boundary.
    pub(crate) snapshot: EpochSnapshot,
    /// Pods drawn from each pool entry this epoch (delta for the boundary).
    pub(crate) pool_draws: Vec<u64>,
    /// Net in-flight change per cluster this epoch.
    pub(crate) cluster_delta: Vec<i64>,
    /// Per-member draw budget bookkeeping: `draw_marks[i] == epoch` means
    /// `draw_counts[i]` is current, anything else means zero draws so far.
    pub(crate) draw_marks: Vec<u32>,
    pub(crate) draw_counts: Vec<u32>,
    /// Net live-pod change per node this epoch (node model only; empty when
    /// the model is off).
    pub(crate) node_pod_delta: Vec<i64>,
    /// Layer pulls started this epoch (node model only).
    pub(crate) pull_records: Vec<PullRecord>,
    /// Per-member epoch stamp for `fn_node_use`, mirroring `draw_marks`.
    pub(crate) node_marks: Vec<u32>,
    /// A function's *own* node activity this epoch: placements count toward
    /// the load it sees, and its own pulls read as cache hits immediately.
    /// Other functions' activity stays invisible until the boundary — the
    /// same epoch-granularity approximation the pool-draw budget uses.
    pub(crate) fn_node_use: Vec<Vec<FnNodeUse>>,
    /// Current epoch number, starting at 1 so zeroed marks read as stale.
    pub(crate) epoch: u32,
}

/// One function's within-epoch activity on one node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnNodeUse {
    pub(crate) node: u32,
    pub(crate) placed: u32,
    pub(crate) pulled: bool,
}

impl<'a> SimState<'a> {
    /// Builds fresh state for one shard of one run: the members of the shard
    /// (ascending global indices into the workload table) and the initial
    /// shared-capacity snapshot.
    pub(crate) fn new(
        workload: &'a WorkloadSpec,
        config: &PlatformConfig,
        seed: u64,
        members: Vec<u32>,
        snapshot: EpochSnapshot,
    ) -> Self {
        let n = members.len();
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let mut specs = Vec::with_capacity(n);
        let mut fn_rngs = Vec::with_capacity(n);
        let mut fn_index = FnIndexMap::with_capacity_and_hasher(n, Default::default());
        for (local, &global) in members.iter().enumerate() {
            let spec = &workload.functions[global as usize];
            specs.push(spec);
            fn_rngs.push(fn_rng(seed, global));
            // On duplicate ids the later entry wins, matching the previous
            // map-keyed table; duplicates are co-sharded (see
            // `faas_workload::ShardPlan`), so the winner is the same
            // whatever the shard count.
            fn_index.insert(spec.function, FnIdx::new(local as u32));
        }
        let trace = if config.record_trace {
            let mut trace = RegionTrace::new(workload.region);
            for &spec in &specs {
                trace.functions.insert(FunctionMeta {
                    function: spec.function,
                    user: spec.user,
                    runtime: spec.runtime,
                    triggers: spec.triggers.clone(),
                    config: spec.config,
                });
            }
            Some(trace)
        } else {
            None
        };
        let pool_slots = snapshot.pool_idle.len();
        let clusters = usize::from(snapshot.clusters.clusters());
        let node_slots = snapshot.nodes.as_ref().map_or(0, |nodes| nodes.len());
        Self {
            workload,
            config: config.clone(),
            members,
            specs,
            fn_index,
            latency_model: ColdStartLatencyModel::new(workload.profile.clone()),
            fn_rngs,
            queue: EventQueue::new(),
            pods: PodArena::new(),
            warm_by_function: vec![Vec::new(); n],
            histories: vec![FunctionHistory::default(); n],
            extra_histories: HashMap::new(),
            recent_arrivals: vec![0; n],
            pod_counters: vec![0; n],
            req_counters: vec![0; n],
            report: SimReport::default(),
            cold_latencies_s: Vec::new(),
            accum: vec![FnAccum::default(); n],
            trace,
            snapshot,
            pool_draws: vec![0; pool_slots],
            cluster_delta: vec![0; clusters],
            draw_marks: vec![0; n],
            draw_counts: vec![0; n],
            node_pod_delta: vec![0; node_slots],
            pull_records: Vec::new(),
            node_marks: vec![0; n],
            fn_node_use: vec![Vec::new(); n],
            epoch: 1,
        }
    }

    /// Resolves a public function id to its local index, if the function is
    /// a member of this shard. The one hash lookup on the arrival path.
    pub(crate) fn resolve(&self, function: FunctionId) -> Option<FnIdx> {
        self.fn_index.get(&function).copied()
    }

    pub(crate) fn observe_arrival(&mut self, function: FnIdx, t: u64) {
        self.histories[function.index()].observe_arrival(t);
        self.recent_arrivals[function.index()] += 1;
    }

    /// Records an arrival for a function outside the workload table.
    pub(crate) fn observe_unknown_arrival(&mut self, function: FunctionId, t: u64) {
        self.extra_histories
            .entry(function)
            .or_default()
            .observe_arrival(t);
    }

    pub(crate) fn reset_recent_arrivals(&mut self) {
        self.recent_arrivals.fill(0);
    }

    /// This shard's contribution to shared state since the last boundary,
    /// leaving the accumulators zeroed for the next epoch.
    pub(crate) fn take_delta(&mut self) -> ShardDelta {
        let node = self.snapshot.nodes.as_ref().map(|nodes| NodeDelta {
            pod_delta: std::mem::replace(&mut self.node_pod_delta, vec![0; nodes.len()]),
            pulls: std::mem::take(&mut self.pull_records),
        });
        ShardDelta {
            pool_draws: std::mem::replace(
                &mut self.pool_draws,
                vec![0; self.snapshot.pool_idle.len()],
            ),
            cluster_delta: std::mem::replace(
                &mut self.cluster_delta,
                vec![0; usize::from(self.snapshot.clusters.clusters())],
            ),
            live_pods: u64::from(self.pods.live()),
            node,
        }
    }

    /// Installs the reconciled snapshot and opens the next epoch (lazily
    /// invalidating every member's pool-draw budget via the epoch stamp).
    pub(crate) fn begin_epoch(&mut self, snapshot: EpochSnapshot) {
        self.snapshot = snapshot;
        self.epoch += 1;
    }

    /// Tries to draw a pooled pod against the epoch-start snapshot.
    ///
    /// A draw succeeds while the function's own draws this epoch are below
    /// the snapshot's idle count for its configuration. Draws by *other*
    /// functions (on this or any other shard) are invisible until the next
    /// boundary — that independence is the documented epoch-granularity
    /// approximation, and the reason the decision cannot depend on the
    /// sharding. The ledger clamps any aggregate oversubscription when the
    /// draws settle.
    fn try_draw(
        &mut self,
        function: FnIdx,
        cfg: ResourceConfig,
        pooled_runtime: bool,
    ) -> PoolAcquire {
        if pooled_runtime {
            if let Some((slot, idle)) = self.snapshot.pool_slot(cfg) {
                let i = function.index();
                if self.draw_marks[i] != self.epoch {
                    self.draw_marks[i] = self.epoch;
                    self.draw_counts[i] = 0;
                }
                if self.draw_counts[i] < idle {
                    self.draw_counts[i] += 1;
                    self.pool_draws[slot] += 1;
                    self.report.pool_hits += 1;
                    return PoolAcquire::FromPool;
                }
            }
        }
        self.report.scratch_creations += 1;
        PoolAcquire::FromScratch
    }

    pub(crate) fn function_view(&self, function: FnIdx, _now_ms: u64) -> FunctionView {
        let spec = self.specs[function.index()];
        let history = &self.histories[function.index()];
        FunctionView {
            function: spec.function,
            runtime: spec.runtime,
            trigger: spec.primary_trigger(),
            config: spec.config,
            timer_period_secs: spec.timer_period_secs,
            warm_pods: self.warm_by_function[function.index()].len() as u32,
            arrivals: history.arrivals,
            cold_starts: history.cold_starts,
            recent_arrivals: self.recent_arrivals[function.index()],
            last_arrival_ms: history.last_arrival(),
        }
    }

    /// Platform-wide view for the pre-warm policy: the shard's member
    /// functions (in ascending global-table order) plus shared totals from
    /// the epoch-start snapshot. Platform totals are epoch-stale by design;
    /// per-function fields are live.
    pub(crate) fn platform_view(&self, now_ms: u64) -> PlatformView {
        let functions = self
            .members
            .iter()
            .map(|&global| &self.workload.functions[global as usize])
            .filter_map(|spec| self.resolve(spec.function))
            .map(|idx| self.function_view(idx, now_ms))
            .collect::<Vec<_>>();
        PlatformView {
            now_ms,
            total_warm_pods: u32::try_from(self.snapshot.live_pods).unwrap_or(u32::MAX),
            pooled_idle_pods: self.snapshot.pooled_idle(),
            functions,
        }
    }

    /// Samples one cold start for `function` and registers the new pod.
    /// Returns the pod's arena slot and its cold-start duration in
    /// microseconds.
    pub(crate) fn create_pod(&mut self, function: FnIdx, t: u64, prewarmed: bool) -> (PodIdx, u64) {
        let spec = self.specs[function.index()];
        // With the node model on, the placement policy picks a node and the
        // pod's cluster is the node's; otherwise clusters are placed
        // directly as before. Placement reads only the epoch-start snapshot
        // plus the function's own placements this epoch, so it cannot
        // depend on the sharding.
        let (cluster, node) = match self.snapshot.nodes.as_ref() {
            Some(nodes) => {
                let i = function.index();
                if self.node_marks[i] != self.epoch {
                    self.node_marks[i] = self.epoch;
                    self.fn_node_use[i].clear();
                }
                let own = &self.fn_node_use[i];
                let node = nodes.choose_node(spec.function, &self.snapshot.clusters, |n| {
                    own.iter().find(|e| e.node == n).map_or(0, |e| e.placed)
                });
                (nodes.nodes[node as usize].cluster, Some(node))
            }
            None => (self.snapshot.clusters.place_pod(spec.function), None),
        };
        let acquire = self.try_draw(function, spec.config, spec.runtime.has_reserved_pool());
        let day = (t / MILLIS_PER_DAY) as u32;
        let hour = ((t % MILLIS_PER_DAY) / MILLIS_PER_HOUR) as f64;
        let load_factor =
            self.workload
                .profile
                .load_multiplier(&self.workload.calibration, day, hour);
        let mut components = self.latency_model.sample(
            spec.runtime,
            spec.config.size_class(),
            spec.has_dependencies,
            load_factor,
            &mut self.fn_rngs[function.index()],
        );
        if acquire == PoolAcquire::FromScratch && spec.runtime.has_reserved_pool() {
            // The pool was empty: pay the from-scratch allocation path.
            components.pod_alloc_us = (components.pod_alloc_us as f64
                * self.config.pool.scratch_allocation_multiplier)
                as u64;
        }
        if let Some(node) = node {
            let i = function.index();
            let mut pulled = false;
            if spec.has_dependencies {
                let nodes = self.snapshot.nodes.as_ref().expect("node snapshot exists");
                let layer = LayerKey::of(spec.function);
                let own_pulled = self.fn_node_use[i]
                    .iter()
                    .any(|e| e.node == node && e.pulled);
                if own_pulled || nodes.cache_hit(node, layer) {
                    // The layer is already on the node: the dependency
                    // component collapses to zero (the paper's cache hit).
                    components.deploy_dep_us = 0;
                    self.report.layer_cache_hits += 1;
                } else {
                    components.deploy_dep_us = nodes.pull_micros(node);
                    self.pull_records.push(PullRecord {
                        time_ms: t,
                        node,
                        layer,
                    });
                    self.report.layer_pulls += 1;
                    pulled = true;
                }
            }
            match self.fn_node_use[i].iter_mut().find(|e| e.node == node) {
                Some(e) => {
                    e.placed += 1;
                    e.pulled |= pulled;
                }
                None => self.fn_node_use[i].push(FnNodeUse {
                    node,
                    placed: 1,
                    pulled,
                }),
            }
            self.node_pod_delta[node as usize] += 1;
        }

        // Public pod ids are minted from a per-function never-reused counter
        // tagged with the function's global index, so they are unique across
        // shards, independent of arena slot recycling, and independent of
        // how pod creations interleave across functions.
        self.pod_counters[function.index()] += 1;
        let global = u64::from(self.members[function.index()]);
        let pod_id = PodId::new(
            (u64::from(self.workload.region.index()) << 48)
                | (global << 26)
                | u64::from(self.pod_counters[function.index()]),
        );
        let mut pod = Pod::new(
            pod_id,
            spec.function,
            cluster,
            spec.config,
            t,
            components.total_us(),
            prewarmed,
        );
        pod.node = node;
        let pod_idx = self.pods.insert(pod, function);
        self.warm_by_function[function.index()].push(pod_idx);

        if !prewarmed {
            self.report.cold_starts += 1;
            self.cold_latencies_s.push(components.total_secs());
            let acc = &mut self.accum[function.index()];
            acc.added_latency_s += components.total_secs();
            // Exact integer attribution: `cold` sums the components, while
            // `cold_us` sums each cold start's total independently, so the
            // merge-level components-sum invariant is a real cross-check.
            acc.cold.add(&ComponentTotals {
                pod_alloc_us: components.pod_alloc_us,
                deploy_code_us: components.deploy_code_us,
                deploy_dep_us: components.deploy_dep_us,
                scheduling_us: components.scheduling_us,
            });
            acc.cold_us += components.total_us();
            self.histories[function.index()].observe_cold_start();
            if let Some(trace) = self.trace.as_mut() {
                trace.cold_starts.push(ColdStartRecord {
                    timestamp_ms: t,
                    pod: pod_id,
                    cluster,
                    function: spec.function,
                    user: spec.user,
                    cold_start_us: components.total_us(),
                    pod_alloc_us: components.pod_alloc_us,
                    deploy_code_us: components.deploy_code_us,
                    deploy_dep_us: components.deploy_dep_us,
                    scheduling_us: components.scheduling_us,
                });
            }
        } else {
            self.report.prewarmed_pods += 1;
        }
        (pod_idx, components.total_us())
    }

    /// Dispatches one admitted request.
    pub(crate) fn dispatch(&mut self, function: FnIdx, t: u64, keep_alive: &dyn KeepAlivePolicy) {
        let spec = self.specs[function.index()];
        self.report.requests += 1;

        // Pick the most recently active warm pod with spare capacity that is
        // already ready to serve. The warm list holds arena slots in the
        // same creation order the id-keyed list used, so ties resolve to the
        // same pod.
        let warm_pod = self.warm_by_function[function.index()]
            .iter()
            .filter_map(|&idx| self.pods.get(idx).map(|p| (idx, p)))
            .filter(|(_, p)| p.has_capacity(spec.concurrency) && p.ready_ms <= t)
            .max_by_key(|(_, p)| p.last_activity_ms)
            .map(|(idx, _)| idx);

        let exec_secs = (spec.median_execution_secs
            * (0.6 * self.fn_rngs[function.index()].standard_normal()).exp())
        .clamp(1e-4, 600.0);
        let exec_ms = (exec_secs * 1e3).ceil() as u64;

        let (pod_idx, startup_ms) = match warm_pod {
            Some(pod_idx) => {
                self.report.warm_starts += 1;
                (pod_idx, 0)
            }
            None => {
                let (pod_idx, cold_us) = self.create_pod(function, t, false);
                (pod_idx, cold_us.div_ceil(1000))
            }
        };

        let pod = self.pods.get_mut(pod_idx).expect("pod exists");
        let pod_id = pod.id;
        let was_prewarmed_unused = pod.prewarmed && pod.served == 0;
        pod.begin_request();
        if was_prewarmed_unused {
            self.report.prewarmed_pods_used += 1;
        }
        let cluster = pod.cluster;
        self.cluster_delta[usize::from(cluster)] += 1;
        self.queue.push(
            t + startup_ms + exec_ms,
            Event::RequestComplete {
                pod: pod_idx,
                busy_ms: exec_ms,
            },
        );

        if let Some(trace) = self.trace.as_mut() {
            self.req_counters[function.index()] += 1;
            let global = u64::from(self.members[function.index()]);
            let rng = &mut self.fn_rngs[function.index()];
            let cpu = (spec.cpu_millicores * (0.3 * rng.standard_normal()).exp())
                .clamp(5.0, spec.config.millicores as f64);
            let memory = ((spec.memory_bytes as f64) * (0.9 + 0.2 * rng.next_f64())).round() as u64;
            trace.requests.push(RequestRecord {
                timestamp_ms: t,
                pod: pod_id,
                cluster,
                function: spec.function,
                user: spec.user,
                request: RequestId::new(
                    ((global + 1) << 32) | u64::from(self.req_counters[function.index()]),
                ),
                execution_time_us: (exec_secs * 1e6) as u64,
                cpu_usage_millicores: cpu,
                memory_usage_bytes: memory,
            });
        }
        let _ = keep_alive;
    }

    pub(crate) fn complete_request(
        &mut self,
        pod_idx: PodIdx,
        t: u64,
        busy_ms: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        let Some((pod, function)) = self.pods.get_mut_with_fn(pod_idx) else {
            return;
        };
        let cluster = pod.cluster;
        let function_id = pod.function;
        let became_idle = pod.complete_request(t, busy_ms);
        let generation = pod.expiry_generation;
        self.cluster_delta[usize::from(cluster)] -= 1;
        if became_idle {
            let history = &self.histories[function.index()];
            let ka = keep_alive.keep_alive_ms(function_id, history);
            self.queue.push(
                t + ka.max(1),
                Event::PodExpire {
                    pod: pod_idx,
                    generation,
                },
            );
        }
    }

    pub(crate) fn expire_pod(&mut self, pod_idx: PodIdx, t: u64, generation: u64) {
        let valid = self
            .pods
            .get(pod_idx)
            .map(|p| {
                p.in_flight == 0
                    && p.expiry_generation == generation
                    && p.state != PodState::Terminated
            })
            .unwrap_or(false);
        if valid {
            self.finalize_pod(pod_idx, t);
        }
    }

    /// Removes a pod from the live set and accounts its lifetime.
    pub(crate) fn finalize_pod(&mut self, pod_idx: PodIdx, t: u64) {
        let Some((mut pod, function)) = self.pods.remove(pod_idx) else {
            return;
        };
        let (lifetime_ms, _served, busy_ms) = pod.terminate(t);
        let acc = &mut self.accum[function.index()];
        acc.pod_lifetime_s += lifetime_ms as f64 / 1e3;
        let startup_ms = pod.cold_start_us / 1000;
        let idle_s = lifetime_ms.saturating_sub(busy_ms + startup_ms) as f64 / 1e3;
        acc.idle_pod_time_s += idle_s;
        acc.mem_gb_s_wasted += idle_s * pod.config.memory_mb as f64 / 1024.0;
        if let Some(node) = pod.node {
            if let Some(d) = self.node_pod_delta.get_mut(node as usize) {
                *d -= 1;
            }
        }
        self.warm_by_function[function.index()].retain(|&idx| idx != pod_idx);
    }

    /// Creates a pre-warmed pod whose startup cost is paid off the critical
    /// path; it joins the warm set once ready and expires like any idle pod.
    pub(crate) fn prewarm_pod(
        &mut self,
        function: FnIdx,
        t: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        let (pod_idx, _cold_us) = self.create_pod(function, t, true);
        let function_id = self.specs[function.index()].function;
        let ka = keep_alive.keep_alive_ms(function_id, &self.histories[function.index()]);
        let pod = self.pods.get(pod_idx).expect("pod exists");
        let generation = pod.expiry_generation;
        self.queue.push(
            pod.ready_ms + ka.max(1),
            Event::PodExpire {
                pod: pod_idx,
                generation,
            },
        );
    }

    /// Consumes the shard's state into the pieces the cross-shard merge
    /// needs (see [`crate::shard::merge_outcomes`]). Per-function replay
    /// statistics are left unsorted here; the merge sorts the combined set.
    pub(crate) fn into_outcome(self) -> ShardOutcome {
        let per_function: Vec<FunctionStats> = if self.workload.is_replay() {
            self.histories
                .iter()
                .enumerate()
                .filter(|(_, h)| h.arrivals > 0 || h.cold_starts > 0)
                .map(|(i, h)| FunctionStats {
                    function: self.specs[i].function,
                    requests: h.arrivals,
                    cold_starts: h.cold_starts,
                    components: self.accum[i].cold,
                })
                .chain(
                    self.extra_histories
                        .iter()
                        .filter(|(_, h)| h.arrivals > 0 || h.cold_starts > 0)
                        .map(|(&function, h)| FunctionStats {
                            function,
                            requests: h.arrivals,
                            cold_starts: h.cold_starts,
                            // Unknown functions are never dispatched, so no
                            // cold time is ever charged to them.
                            components: ComponentTotals::default(),
                        }),
                )
                .collect()
        } else {
            Vec::new()
        };
        ShardOutcome {
            report: self.report,
            members: self.members,
            accum: self.accum,
            cold_latencies_s: self.cold_latencies_s,
            per_function,
            trace: self.trace,
        }
    }
}

//! Mutable simulation state.
//!
//! [`SimState`] owns everything that changes while a workload replays: the
//! event queue, live pods, per-function histories, resource pools, cluster
//! load, the RNG stream, and the report being accumulated. The event loop in
//! [`crate::engine`] drives it; splitting the two keeps the loop readable and
//! lets alternative drivers (the experiment grid, future incremental
//! re-simulation) reuse the state transitions unchanged.

use std::collections::HashMap;

use faas_stats::rng::Xoshiro256pp;
use faas_workload::{ColdStartLatencyModel, FunctionSpec, WorkloadSpec};
use fntrace::{
    ColdStartRecord, FunctionId, FunctionMeta, PodId, RegionTrace, RequestId, RequestRecord,
    MILLIS_PER_DAY, MILLIS_PER_HOUR,
};

use crate::cluster::ClusterState;
use crate::config::PlatformConfig;
use crate::event::{Event, EventQueue};
use crate::keepalive::{FunctionHistory, KeepAlivePolicy};
use crate::pod::{Pod, PodState};
use crate::policy::{FunctionView, PlatformView};
use crate::pool::{PoolAcquire, ResourcePools};
use crate::report::{FunctionStats, LatencyStats, SimReport};

/// Mutable state of one in-flight simulation run.
///
/// Everything here is owned by a single run; the engine constructs one
/// `SimState` per [`WorkloadSpec`] replay and consumes it into the final
/// report, so replicating a run is as cheap as building a new state from the
/// same borrowed workload.
pub struct SimState<'a> {
    pub(crate) workload: &'a WorkloadSpec,
    pub(crate) config: PlatformConfig,
    pub(crate) specs: HashMap<FunctionId, &'a FunctionSpec>,
    pub(crate) latency_model: ColdStartLatencyModel,
    pub(crate) rng: Xoshiro256pp,
    pub(crate) queue: EventQueue,
    pub(crate) pools: ResourcePools,
    pub(crate) clusters: ClusterState,
    pub(crate) pods: HashMap<PodId, Pod>,
    pub(crate) warm_by_function: HashMap<FunctionId, Vec<PodId>>,
    pub(crate) histories: HashMap<FunctionId, FunctionHistory>,
    pub(crate) recent_arrivals: HashMap<FunctionId, u64>,
    pub(crate) next_pod_id: u64,
    pub(crate) next_request_id: u64,
    pub(crate) report: SimReport,
    pub(crate) cold_latencies_s: Vec<f64>,
    pub(crate) added_latency_s: f64,
    pub(crate) trace: Option<RegionTrace>,
    pub(crate) peak_live_pods: u32,
}

impl<'a> SimState<'a> {
    /// Builds fresh state for one replay of `workload`.
    pub(crate) fn new(workload: &'a WorkloadSpec, config: &PlatformConfig, seed: u64) -> Self {
        let specs = workload.functions.iter().map(|f| (f.function, f)).collect();
        let trace = if config.record_trace {
            let mut trace = RegionTrace::new(workload.region);
            for spec in &workload.functions {
                trace.functions.insert(FunctionMeta {
                    function: spec.function,
                    user: spec.user,
                    runtime: spec.runtime,
                    triggers: spec.triggers.clone(),
                    config: spec.config,
                });
            }
            Some(trace)
        } else {
            None
        };
        Self {
            workload,
            config: config.clone(),
            specs,
            latency_model: ColdStartLatencyModel::new(workload.profile.clone()),
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x5151_5151),
            queue: EventQueue::new(),
            pools: ResourcePools::new(config.pool.clone()),
            clusters: ClusterState::new(config.clusters, config.hot_spot_threshold),
            pods: HashMap::new(),
            warm_by_function: HashMap::new(),
            histories: HashMap::new(),
            recent_arrivals: HashMap::new(),
            next_pod_id: 0,
            next_request_id: 0,
            report: SimReport::default(),
            cold_latencies_s: Vec::new(),
            added_latency_s: 0.0,
            trace,
            peak_live_pods: 0,
        }
    }

    pub(crate) fn observe_arrival(&mut self, function: FunctionId, t: u64) {
        self.histories
            .entry(function)
            .or_default()
            .observe_arrival(t);
        *self.recent_arrivals.entry(function).or_insert(0) += 1;
    }

    pub(crate) fn reset_recent_arrivals(&mut self) {
        self.recent_arrivals.clear();
    }

    pub(crate) fn function_view(&self, function: FunctionId, _now_ms: u64) -> Option<FunctionView> {
        let spec = self.specs.get(&function)?;
        let history = self.histories.get(&function);
        let warm = self
            .warm_by_function
            .get(&function)
            .map(|v| v.len() as u32)
            .unwrap_or(0);
        Some(FunctionView {
            function,
            runtime: spec.runtime,
            trigger: spec.primary_trigger(),
            config: spec.config,
            timer_period_secs: spec.timer_period_secs,
            warm_pods: warm,
            arrivals: history.map(|h| h.arrivals).unwrap_or(0),
            cold_starts: history.map(|h| h.cold_starts).unwrap_or(0),
            recent_arrivals: self.recent_arrivals.get(&function).copied().unwrap_or(0),
            last_arrival_ms: history.and_then(|h| h.last_arrival()),
        })
    }

    pub(crate) fn platform_view(&self, now_ms: u64) -> PlatformView {
        let functions = self
            .workload
            .functions
            .iter()
            .filter_map(|f| self.function_view(f.function, now_ms))
            .collect::<Vec<_>>();
        PlatformView {
            now_ms,
            total_warm_pods: self.pods.len() as u32,
            pooled_idle_pods: self.pools.total_idle(),
            functions,
        }
    }

    /// Samples one cold start for `function` and registers the new pod.
    /// Returns the pod id and its cold-start duration in microseconds.
    pub(crate) fn create_pod(
        &mut self,
        function: FunctionId,
        t: u64,
        prewarmed: bool,
    ) -> Option<(PodId, u64)> {
        let spec = *self.specs.get(&function)?;
        let cluster = self.clusters.place_pod(function);
        let acquire = self
            .pools
            .acquire(spec.config, spec.runtime.has_reserved_pool(), t);
        let day = (t / MILLIS_PER_DAY) as u32;
        let hour = ((t % MILLIS_PER_DAY) / MILLIS_PER_HOUR) as f64;
        let load_factor =
            self.workload
                .profile
                .load_multiplier(&self.workload.calibration, day, hour);
        let mut components = self.latency_model.sample(
            spec.runtime,
            spec.config.size_class(),
            spec.has_dependencies,
            load_factor,
            &mut self.rng,
        );
        if acquire == PoolAcquire::FromScratch && spec.runtime.has_reserved_pool() {
            // The pool was empty: pay the from-scratch allocation path.
            components.pod_alloc_us = (components.pod_alloc_us as f64
                * self.config.pool.scratch_allocation_multiplier)
                as u64;
        }

        self.next_pod_id += 1;
        let pod_id = PodId::new((u64::from(self.workload.region.index()) << 48) | self.next_pod_id);
        let pod = Pod::new(
            pod_id,
            function,
            cluster,
            spec.config,
            t,
            components.total_us(),
            prewarmed,
        );
        self.pods.insert(pod_id, pod);
        self.warm_by_function
            .entry(function)
            .or_default()
            .push(pod_id);
        self.peak_live_pods = self.peak_live_pods.max(self.pods.len() as u32);

        if !prewarmed {
            self.report.cold_starts += 1;
            self.cold_latencies_s.push(components.total_secs());
            self.added_latency_s += components.total_secs();
            self.histories
                .entry(function)
                .or_default()
                .observe_cold_start();
            if let Some(trace) = self.trace.as_mut() {
                trace.cold_starts.push(ColdStartRecord {
                    timestamp_ms: t,
                    pod: pod_id,
                    cluster,
                    function,
                    user: spec.user,
                    cold_start_us: components.total_us(),
                    pod_alloc_us: components.pod_alloc_us,
                    deploy_code_us: components.deploy_code_us,
                    deploy_dep_us: components.deploy_dep_us,
                    scheduling_us: components.scheduling_us,
                });
            }
        } else {
            self.report.prewarmed_pods += 1;
        }
        match acquire {
            PoolAcquire::FromPool => self.report.pool_hits += 1,
            PoolAcquire::FromScratch => self.report.scratch_creations += 1,
        }
        Some((pod_id, components.total_us()))
    }

    /// Dispatches one admitted request.
    pub(crate) fn dispatch(
        &mut self,
        function: FunctionId,
        t: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        let Some(spec) = self.specs.get(&function).copied() else {
            return;
        };
        self.report.requests += 1;

        // Pick the most recently active warm pod with spare capacity that is
        // already ready to serve.
        let warm_pod = self.warm_by_function.get(&function).and_then(|pods| {
            pods.iter()
                .filter_map(|id| self.pods.get(id))
                .filter(|p| p.has_capacity(spec.concurrency) && p.ready_ms <= t)
                .max_by_key(|p| p.last_activity_ms)
                .map(|p| p.id)
        });

        let exec_secs = (spec.median_execution_secs * (0.6 * self.rng.standard_normal()).exp())
            .clamp(1e-4, 600.0);
        let exec_ms = (exec_secs * 1e3).ceil() as u64;

        let (pod_id, startup_ms) = match warm_pod {
            Some(pod_id) => {
                self.report.warm_starts += 1;
                (pod_id, 0)
            }
            None => match self.create_pod(function, t, false) {
                Some((pod_id, cold_us)) => (pod_id, cold_us.div_ceil(1000)),
                None => return,
            },
        };

        let pod = self.pods.get_mut(&pod_id).expect("pod exists");
        let was_prewarmed_unused = pod.prewarmed && pod.served == 0;
        pod.begin_request();
        if was_prewarmed_unused {
            self.report.prewarmed_pods_used += 1;
        }
        let cluster = pod.cluster;
        self.clusters.begin_request(cluster);
        self.queue.push(
            t + startup_ms + exec_ms,
            Event::RequestComplete {
                pod: pod_id,
                busy_ms: exec_ms,
            },
        );

        if let Some(trace) = self.trace.as_mut() {
            self.next_request_id += 1;
            let cpu = (spec.cpu_millicores * (0.3 * self.rng.standard_normal()).exp())
                .clamp(5.0, spec.config.millicores as f64);
            let memory =
                ((spec.memory_bytes as f64) * (0.9 + 0.2 * self.rng.next_f64())).round() as u64;
            trace.requests.push(RequestRecord {
                timestamp_ms: t,
                pod: pod_id,
                cluster,
                function,
                user: spec.user,
                request: RequestId::new(self.next_request_id),
                execution_time_us: (exec_secs * 1e6) as u64,
                cpu_usage_millicores: cpu,
                memory_usage_bytes: memory,
            });
        }
        let _ = keep_alive;
    }

    pub(crate) fn complete_request(
        &mut self,
        pod_id: PodId,
        t: u64,
        busy_ms: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        let Some(pod) = self.pods.get_mut(&pod_id) else {
            return;
        };
        let cluster = pod.cluster;
        let function = pod.function;
        let became_idle = pod.complete_request(t, busy_ms);
        self.clusters.complete_request(cluster);
        if became_idle {
            let history = self.histories.entry(function).or_default();
            let ka = keep_alive.keep_alive_ms(function, history);
            let generation = pod.expiry_generation;
            self.queue.push(
                t + ka.max(1),
                Event::PodExpire {
                    pod: pod_id,
                    generation,
                },
            );
        }
    }

    pub(crate) fn expire_pod(&mut self, pod_id: PodId, t: u64, generation: u64) {
        let valid = self
            .pods
            .get(&pod_id)
            .map(|p| {
                p.in_flight == 0
                    && p.expiry_generation == generation
                    && p.state != PodState::Terminated
            })
            .unwrap_or(false);
        if valid {
            self.finalize_pod(pod_id, t);
        }
    }

    /// Removes a pod from the live set and accounts its lifetime.
    pub(crate) fn finalize_pod(&mut self, pod_id: PodId, t: u64) {
        let Some(mut pod) = self.pods.remove(&pod_id) else {
            return;
        };
        let function = pod.function;
        let (lifetime_ms, _served, busy_ms) = pod.terminate(t);
        self.report.pod_lifetime_s += lifetime_ms as f64 / 1e3;
        let startup_ms = pod.cold_start_us / 1000;
        let idle_s = lifetime_ms.saturating_sub(busy_ms + startup_ms) as f64 / 1e3;
        self.report.idle_pod_time_s += idle_s;
        self.report.mem_gb_s_wasted += idle_s * pod.config.memory_mb as f64 / 1024.0;
        if let Some(list) = self.warm_by_function.get_mut(&function) {
            list.retain(|id| *id != pod_id);
        }
    }

    /// Creates a pre-warmed pod whose startup cost is paid off the critical
    /// path; it joins the warm set once ready and expires like any idle pod.
    pub(crate) fn prewarm_pod(
        &mut self,
        function: FunctionId,
        t: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        if let Some((pod_id, _cold_us)) = self.create_pod(function, t, true) {
            let history = self.histories.entry(function).or_default();
            let ka = keep_alive.keep_alive_ms(function, history);
            let pod = self.pods.get(&pod_id).expect("pod exists");
            let generation = pod.expiry_generation;
            self.queue.push(
                pod.ready_ms + ka.max(1),
                Event::PodExpire {
                    pod: pod_id,
                    generation,
                },
            );
        }
    }

    pub(crate) fn into_report(
        mut self,
        keep_alive: &str,
        prewarm: &str,
        admission: &str,
    ) -> (SimReport, Option<RegionTrace>) {
        self.report.cold_start_latency = LatencyStats::from_secs(&self.cold_latencies_s);
        self.report.mean_added_latency_s = if self.report.requests == 0 {
            0.0
        } else {
            self.added_latency_s / self.report.requests as f64
        };
        self.report.peak_live_pods = self.peak_live_pods;
        // Replay-tagged workloads carry real function identities: fold the
        // per-function histories into the report, sorted for determinism.
        if self.workload.is_replay() {
            let mut per_function: Vec<FunctionStats> = self
                .histories
                .iter()
                .filter(|(_, h)| h.arrivals > 0 || h.cold_starts > 0)
                .map(|(&function, h)| FunctionStats {
                    function,
                    requests: h.arrivals,
                    cold_starts: h.cold_starts,
                })
                .collect();
            per_function.sort_by_key(|s| s.function);
            self.report.per_function = per_function;
        }
        // Reserved pool capacity is wasted memory just like keep-alive idling;
        // the engine advances the pool integral to the horizon before this.
        self.report.mem_gb_s_wasted += self.pools.mem_gb_s();
        self.report.keep_alive_policy = keep_alive.to_string();
        self.report.prewarm_policy = prewarm.to_string();
        self.report.admission_policy = admission.to_string();
        // Pool statistics.
        self.report.pool_hits = self.pools.pool_hits();
        self.report.scratch_creations = self.pools.scratch_creations();
        let mut trace = self.trace;
        if let Some(trace) = trace.as_mut() {
            trace.sort_by_time();
        }
        (self.report, trace)
    }
}

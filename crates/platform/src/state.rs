//! Mutable simulation state.
//!
//! [`SimState`] owns everything that changes while a workload replays: the
//! event queue, live pods, per-function histories, resource pools, cluster
//! load, the RNG stream, and the report being accumulated. The event loop in
//! [`crate::engine`] drives it; splitting the two keeps the loop readable and
//! lets alternative drivers (the experiment grid, future incremental
//! re-simulation) reuse the state transitions unchanged.
//!
//! All hot per-function and per-pod tables are index-addressed (see
//! [`crate::arena`]): functions resolve once per external arrival from their
//! hashed [`FunctionId`] to a dense [`FnIdx`], and from there every lookup —
//! histories, warm-pod lists, recent-arrival counters, specs — is a `Vec`
//! index. Live pods live in a slot-recycling [`PodArena`]. Arrivals for
//! functions absent from the workload table (possible with hand-written
//! replay traces) fall back to a cold-path side map so their histories are
//! still accounted exactly as before.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use faas_stats::rng::Xoshiro256pp;
use faas_workload::{ColdStartLatencyModel, FunctionSpec, WorkloadSpec};
use fntrace::{
    ColdStartRecord, FunctionId, FunctionMeta, PodId, RegionTrace, RequestId, RequestRecord,
    MILLIS_PER_DAY, MILLIS_PER_HOUR,
};

use crate::arena::{FnIdx, PodArena, PodIdx};
use crate::cluster::ClusterState;
use crate::config::PlatformConfig;
use crate::event::{Event, EventQueue};
use crate::keepalive::{FunctionHistory, KeepAlivePolicy};
use crate::pod::{Pod, PodState};
use crate::policy::{FunctionView, PlatformView};
use crate::pool::{PoolAcquire, ResourcePools};
use crate::report::{FunctionStats, LatencyStats, SimReport};

/// Hasher for the arrival-path `FunctionId -> FnIdx` map.
///
/// Function ids are plain 64-bit values (hashed names or small test
/// integers), so a SplitMix64 finalizer — four multiply/xor-shift rounds
/// with full avalanche — replaces SipHash on the one lookup every external
/// arrival performs. It is keyless and deterministic, and the map is only
/// ever probed or inserted into, never iterated, so no observable order
/// depends on it.
#[derive(Clone, Copy, Default)]
pub(crate) struct FnIdHasher(u64);

impl std::hash::Hasher for FnIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic byte fallback (FNV-style); the id map only feeds u64s.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

type FnIndexMap = HashMap<FunctionId, FnIdx, BuildHasherDefault<FnIdHasher>>;

/// Mutable state of one in-flight simulation run.
///
/// Everything here is owned by a single run; the engine constructs one
/// `SimState` per [`WorkloadSpec`] replay and consumes it into the final
/// report, so replicating a run is as cheap as building a new state from the
/// same borrowed workload.
pub struct SimState<'a> {
    pub(crate) workload: &'a WorkloadSpec,
    pub(crate) config: PlatformConfig,
    /// Function specs by dense index (position in the workload table).
    pub(crate) specs: Vec<&'a FunctionSpec>,
    /// Resolves a hashed function id to its dense index; consulted once per
    /// external arrival, never on internal events.
    pub(crate) fn_index: FnIndexMap,
    pub(crate) latency_model: ColdStartLatencyModel,
    pub(crate) rng: Xoshiro256pp,
    pub(crate) queue: EventQueue,
    pub(crate) pools: ResourcePools,
    pub(crate) clusters: ClusterState,
    pub(crate) pods: PodArena,
    pub(crate) warm_by_function: Vec<Vec<PodIdx>>,
    pub(crate) histories: Vec<FunctionHistory>,
    /// Histories of functions outside the workload table (replay traces can
    /// reference them); cold path, keyed by public id.
    pub(crate) extra_histories: HashMap<FunctionId, FunctionHistory>,
    pub(crate) recent_arrivals: Vec<u64>,
    pub(crate) next_pod_id: u64,
    pub(crate) next_request_id: u64,
    pub(crate) report: SimReport,
    pub(crate) cold_latencies_s: Vec<f64>,
    pub(crate) added_latency_s: f64,
    pub(crate) trace: Option<RegionTrace>,
    pub(crate) peak_live_pods: u32,
}

impl<'a> SimState<'a> {
    /// Builds fresh state for one replay of `workload`.
    pub(crate) fn new(workload: &'a WorkloadSpec, config: &PlatformConfig, seed: u64) -> Self {
        let n = workload.functions.len();
        let mut specs = Vec::with_capacity(n);
        let mut fn_index = FnIndexMap::with_capacity_and_hasher(n, Default::default());
        for (i, spec) in workload.functions.iter().enumerate() {
            specs.push(spec);
            // On duplicate ids the later entry wins, matching the previous
            // map-keyed table; the earlier index simply goes unreferenced.
            fn_index.insert(spec.function, FnIdx::new(i as u32));
        }
        let trace = if config.record_trace {
            let mut trace = RegionTrace::new(workload.region);
            for spec in &workload.functions {
                trace.functions.insert(FunctionMeta {
                    function: spec.function,
                    user: spec.user,
                    runtime: spec.runtime,
                    triggers: spec.triggers.clone(),
                    config: spec.config,
                });
            }
            Some(trace)
        } else {
            None
        };
        Self {
            workload,
            config: config.clone(),
            specs,
            fn_index,
            latency_model: ColdStartLatencyModel::new(workload.profile.clone()),
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x5151_5151),
            queue: EventQueue::new(),
            pools: ResourcePools::new(config.pool.clone()),
            clusters: ClusterState::new(config.clusters, config.hot_spot_threshold),
            pods: PodArena::new(),
            warm_by_function: vec![Vec::new(); n],
            histories: vec![FunctionHistory::default(); n],
            extra_histories: HashMap::new(),
            recent_arrivals: vec![0; n],
            next_pod_id: 0,
            next_request_id: 0,
            report: SimReport::default(),
            cold_latencies_s: Vec::new(),
            added_latency_s: 0.0,
            trace,
            peak_live_pods: 0,
        }
    }

    /// Resolves a public function id to its dense index, if the function is
    /// in the workload table. The one hash lookup on the arrival path.
    pub(crate) fn resolve(&self, function: FunctionId) -> Option<FnIdx> {
        self.fn_index.get(&function).copied()
    }

    pub(crate) fn observe_arrival(&mut self, function: FnIdx, t: u64) {
        self.histories[function.index()].observe_arrival(t);
        self.recent_arrivals[function.index()] += 1;
    }

    /// Records an arrival for a function outside the workload table.
    pub(crate) fn observe_unknown_arrival(&mut self, function: FunctionId, t: u64) {
        self.extra_histories
            .entry(function)
            .or_default()
            .observe_arrival(t);
    }

    pub(crate) fn reset_recent_arrivals(&mut self) {
        self.recent_arrivals.fill(0);
    }

    pub(crate) fn function_view(&self, function: FnIdx, _now_ms: u64) -> FunctionView {
        let spec = self.specs[function.index()];
        let history = &self.histories[function.index()];
        FunctionView {
            function: spec.function,
            runtime: spec.runtime,
            trigger: spec.primary_trigger(),
            config: spec.config,
            timer_period_secs: spec.timer_period_secs,
            warm_pods: self.warm_by_function[function.index()].len() as u32,
            arrivals: history.arrivals,
            cold_starts: history.cold_starts,
            recent_arrivals: self.recent_arrivals[function.index()],
            last_arrival_ms: history.last_arrival(),
        }
    }

    pub(crate) fn platform_view(&self, now_ms: u64) -> PlatformView {
        let functions = self
            .workload
            .functions
            .iter()
            .filter_map(|f| self.resolve(f.function))
            .map(|idx| self.function_view(idx, now_ms))
            .collect::<Vec<_>>();
        PlatformView {
            now_ms,
            total_warm_pods: self.pods.live(),
            pooled_idle_pods: self.pools.total_idle(),
            functions,
        }
    }

    /// Samples one cold start for `function` and registers the new pod.
    /// Returns the pod's arena slot and its cold-start duration in
    /// microseconds.
    pub(crate) fn create_pod(&mut self, function: FnIdx, t: u64, prewarmed: bool) -> (PodIdx, u64) {
        let spec = self.specs[function.index()];
        let cluster = self.clusters.place_pod(spec.function);
        let acquire = self
            .pools
            .acquire(spec.config, spec.runtime.has_reserved_pool(), t);
        let day = (t / MILLIS_PER_DAY) as u32;
        let hour = ((t % MILLIS_PER_DAY) / MILLIS_PER_HOUR) as f64;
        let load_factor =
            self.workload
                .profile
                .load_multiplier(&self.workload.calibration, day, hour);
        let mut components = self.latency_model.sample(
            spec.runtime,
            spec.config.size_class(),
            spec.has_dependencies,
            load_factor,
            &mut self.rng,
        );
        if acquire == PoolAcquire::FromScratch && spec.runtime.has_reserved_pool() {
            // The pool was empty: pay the from-scratch allocation path.
            components.pod_alloc_us = (components.pod_alloc_us as f64
                * self.config.pool.scratch_allocation_multiplier)
                as u64;
        }

        // Public pod ids are minted from a never-reused counter regardless of
        // arena slot recycling, so traces are independent of slab layout.
        self.next_pod_id += 1;
        let pod_id = PodId::new((u64::from(self.workload.region.index()) << 48) | self.next_pod_id);
        let pod = Pod::new(
            pod_id,
            spec.function,
            cluster,
            spec.config,
            t,
            components.total_us(),
            prewarmed,
        );
        let pod_idx = self.pods.insert(pod, function);
        self.warm_by_function[function.index()].push(pod_idx);
        self.peak_live_pods = self.peak_live_pods.max(self.pods.live());

        if !prewarmed {
            self.report.cold_starts += 1;
            self.cold_latencies_s.push(components.total_secs());
            self.added_latency_s += components.total_secs();
            self.histories[function.index()].observe_cold_start();
            if let Some(trace) = self.trace.as_mut() {
                trace.cold_starts.push(ColdStartRecord {
                    timestamp_ms: t,
                    pod: pod_id,
                    cluster,
                    function: spec.function,
                    user: spec.user,
                    cold_start_us: components.total_us(),
                    pod_alloc_us: components.pod_alloc_us,
                    deploy_code_us: components.deploy_code_us,
                    deploy_dep_us: components.deploy_dep_us,
                    scheduling_us: components.scheduling_us,
                });
            }
        } else {
            self.report.prewarmed_pods += 1;
        }
        match acquire {
            PoolAcquire::FromPool => self.report.pool_hits += 1,
            PoolAcquire::FromScratch => self.report.scratch_creations += 1,
        }
        (pod_idx, components.total_us())
    }

    /// Dispatches one admitted request.
    pub(crate) fn dispatch(&mut self, function: FnIdx, t: u64, keep_alive: &dyn KeepAlivePolicy) {
        let spec = self.specs[function.index()];
        self.report.requests += 1;

        // Pick the most recently active warm pod with spare capacity that is
        // already ready to serve. The warm list holds arena slots in the
        // same creation order the id-keyed list used, so ties resolve to the
        // same pod.
        let warm_pod = self.warm_by_function[function.index()]
            .iter()
            .filter_map(|&idx| self.pods.get(idx).map(|p| (idx, p)))
            .filter(|(_, p)| p.has_capacity(spec.concurrency) && p.ready_ms <= t)
            .max_by_key(|(_, p)| p.last_activity_ms)
            .map(|(idx, _)| idx);

        let exec_secs = (spec.median_execution_secs * (0.6 * self.rng.standard_normal()).exp())
            .clamp(1e-4, 600.0);
        let exec_ms = (exec_secs * 1e3).ceil() as u64;

        let (pod_idx, startup_ms) = match warm_pod {
            Some(pod_idx) => {
                self.report.warm_starts += 1;
                (pod_idx, 0)
            }
            None => {
                let (pod_idx, cold_us) = self.create_pod(function, t, false);
                (pod_idx, cold_us.div_ceil(1000))
            }
        };

        let pod = self.pods.get_mut(pod_idx).expect("pod exists");
        let pod_id = pod.id;
        let was_prewarmed_unused = pod.prewarmed && pod.served == 0;
        pod.begin_request();
        if was_prewarmed_unused {
            self.report.prewarmed_pods_used += 1;
        }
        let cluster = pod.cluster;
        self.clusters.begin_request(cluster);
        self.queue.push(
            t + startup_ms + exec_ms,
            Event::RequestComplete {
                pod: pod_idx,
                busy_ms: exec_ms,
            },
        );

        if let Some(trace) = self.trace.as_mut() {
            self.next_request_id += 1;
            let cpu = (spec.cpu_millicores * (0.3 * self.rng.standard_normal()).exp())
                .clamp(5.0, spec.config.millicores as f64);
            let memory =
                ((spec.memory_bytes as f64) * (0.9 + 0.2 * self.rng.next_f64())).round() as u64;
            trace.requests.push(RequestRecord {
                timestamp_ms: t,
                pod: pod_id,
                cluster,
                function: spec.function,
                user: spec.user,
                request: RequestId::new(self.next_request_id),
                execution_time_us: (exec_secs * 1e6) as u64,
                cpu_usage_millicores: cpu,
                memory_usage_bytes: memory,
            });
        }
        let _ = keep_alive;
    }

    pub(crate) fn complete_request(
        &mut self,
        pod_idx: PodIdx,
        t: u64,
        busy_ms: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        let Some((pod, function)) = self.pods.get_mut_with_fn(pod_idx) else {
            return;
        };
        let cluster = pod.cluster;
        let function_id = pod.function;
        let became_idle = pod.complete_request(t, busy_ms);
        let generation = pod.expiry_generation;
        self.clusters.complete_request(cluster);
        if became_idle {
            let history = &self.histories[function.index()];
            let ka = keep_alive.keep_alive_ms(function_id, history);
            self.queue.push(
                t + ka.max(1),
                Event::PodExpire {
                    pod: pod_idx,
                    generation,
                },
            );
        }
    }

    pub(crate) fn expire_pod(&mut self, pod_idx: PodIdx, t: u64, generation: u64) {
        let valid = self
            .pods
            .get(pod_idx)
            .map(|p| {
                p.in_flight == 0
                    && p.expiry_generation == generation
                    && p.state != PodState::Terminated
            })
            .unwrap_or(false);
        if valid {
            self.finalize_pod(pod_idx, t);
        }
    }

    /// Removes a pod from the live set and accounts its lifetime.
    pub(crate) fn finalize_pod(&mut self, pod_idx: PodIdx, t: u64) {
        let Some((mut pod, function)) = self.pods.remove(pod_idx) else {
            return;
        };
        let (lifetime_ms, _served, busy_ms) = pod.terminate(t);
        self.report.pod_lifetime_s += lifetime_ms as f64 / 1e3;
        let startup_ms = pod.cold_start_us / 1000;
        let idle_s = lifetime_ms.saturating_sub(busy_ms + startup_ms) as f64 / 1e3;
        self.report.idle_pod_time_s += idle_s;
        self.report.mem_gb_s_wasted += idle_s * pod.config.memory_mb as f64 / 1024.0;
        self.warm_by_function[function.index()].retain(|&idx| idx != pod_idx);
    }

    /// Creates a pre-warmed pod whose startup cost is paid off the critical
    /// path; it joins the warm set once ready and expires like any idle pod.
    pub(crate) fn prewarm_pod(
        &mut self,
        function: FnIdx,
        t: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        let (pod_idx, _cold_us) = self.create_pod(function, t, true);
        let function_id = self.specs[function.index()].function;
        let ka = keep_alive.keep_alive_ms(function_id, &self.histories[function.index()]);
        let pod = self.pods.get(pod_idx).expect("pod exists");
        let generation = pod.expiry_generation;
        self.queue.push(
            pod.ready_ms + ka.max(1),
            Event::PodExpire {
                pod: pod_idx,
                generation,
            },
        );
    }

    pub(crate) fn into_report(
        mut self,
        keep_alive: &str,
        prewarm: &str,
        admission: &str,
    ) -> (SimReport, Option<RegionTrace>) {
        self.report.cold_start_latency = LatencyStats::from_secs(&self.cold_latencies_s);
        self.report.mean_added_latency_s = if self.report.requests == 0 {
            0.0
        } else {
            self.added_latency_s / self.report.requests as f64
        };
        self.report.peak_live_pods = self.peak_live_pods;
        // Replay-tagged workloads carry real function identities: fold the
        // per-function histories into the report, sorted for determinism.
        if self.workload.is_replay() {
            let mut per_function: Vec<FunctionStats> = self
                .histories
                .iter()
                .enumerate()
                .filter(|(_, h)| h.arrivals > 0 || h.cold_starts > 0)
                .map(|(i, h)| FunctionStats {
                    function: self.specs[i].function,
                    requests: h.arrivals,
                    cold_starts: h.cold_starts,
                })
                .chain(
                    self.extra_histories
                        .iter()
                        .filter(|(_, h)| h.arrivals > 0 || h.cold_starts > 0)
                        .map(|(&function, h)| FunctionStats {
                            function,
                            requests: h.arrivals,
                            cold_starts: h.cold_starts,
                        }),
                )
                .collect();
            per_function.sort_by_key(|s| s.function);
            self.report.per_function = per_function;
        }
        // Reserved pool capacity is wasted memory just like keep-alive idling;
        // the engine advances the pool integral to the horizon before this.
        self.report.mem_gb_s_wasted += self.pools.mem_gb_s();
        self.report.keep_alive_policy = keep_alive.to_string();
        self.report.prewarm_policy = prewarm.to_string();
        self.report.admission_policy = admission.to_string();
        // Pool statistics.
        self.report.pool_hits = self.pools.pool_hits();
        self.report.scratch_creations = self.pools.scratch_creations();
        let mut trace = self.trace;
        if let Some(trace) = trace.as_mut() {
            trace.sort_by_time();
        }
        (self.report, trace)
    }
}

//! Replicable simulation specifications.
//!
//! The original [`Simulator`](crate::Simulator) builder owns boxed policy
//! objects, so it is consumed by every run — fine for a one-off simulation,
//! useless for an experiment layer that wants to stamp out hundreds of
//! identical runs across threads. [`SimulationSpec`] fixes that: it holds a
//! [`PolicyFactory`] (cheap to share, `Send + Sync`) instead of policy
//! instances, and builds a fresh [`SimulationEngine`] — with fresh policy
//! state — for every [`run`](SimulationSpec::run). Two runs of the same spec
//! on the same workload are bit-identical, whichever thread they execute on.
//!
//! This pair is the integration point the `coldstarts` session API builds
//! on: a session turns each of its typed policy configurations into one
//! shared `Arc<dyn PolicyFactory>`, stamps out one spec per cell, and relies
//! on the run-for-run freshness above for its parallel == sequential
//! byte-equality guarantee.

use std::sync::Arc;

use faas_workload::stream::ArrivalStream;
use faas_workload::{ShardPlan, WorkloadSpec};
use fntrace::RegionTrace;

use crate::config::PlatformConfig;
use crate::engine::SimulationEngine;
use crate::keepalive::{FixedKeepAlive, KeepAlivePolicy};
use crate::policy::{AdmissionPolicy, NoAdmissionControl, NoPrewarm, PrewarmPolicy};
use crate::report::SimReport;
use crate::shard::{merge_outcomes, EpochLedger, ShardOutcome, SharedEpochState, SharedSync};

/// Builds one run's worth of policies for a given workload.
///
/// Implementations must be `Send + Sync` so one factory can stamp out policy
/// sets concurrently across experiment-session worker threads. The factory
/// is invoked once per run, so stateful policies (adaptive keep-alive
/// histories, demand pre-warmers) start every run from a clean slate —
/// exactly the property that makes parallel and sequential session
/// execution agree.
pub trait PolicyFactory: Send + Sync {
    /// Builds the keep-alive policy for one run over `workload`.
    fn keep_alive(&self, workload: &WorkloadSpec) -> Box<dyn KeepAlivePolicy>;

    /// Builds the pre-warm policy for one run over `workload`.
    fn prewarm(&self, workload: &WorkloadSpec) -> Box<dyn PrewarmPolicy>;

    /// Builds the admission (peak-shaving) policy for one run over `workload`.
    fn admission(&self, workload: &WorkloadSpec) -> Box<dyn AdmissionPolicy>;

    /// Short label describing the policy combination (used in logs and
    /// experiment summaries).
    fn label(&self) -> &str {
        "custom"
    }
}

/// Baseline production policies: fixed one-minute keep-alive, no pre-warming,
/// no admission control.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselinePolicies;

impl PolicyFactory for BaselinePolicies {
    fn keep_alive(&self, _workload: &WorkloadSpec) -> Box<dyn KeepAlivePolicy> {
        Box::new(FixedKeepAlive::default())
    }

    fn prewarm(&self, _workload: &WorkloadSpec) -> Box<dyn PrewarmPolicy> {
        Box::new(NoPrewarm)
    }

    fn admission(&self, _workload: &WorkloadSpec) -> Box<dyn AdmissionPolicy> {
        Box::new(NoAdmissionControl)
    }

    fn label(&self) -> &str {
        "baseline"
    }
}

/// A cheap-to-replicate description of a simulation run: configuration, seed,
/// and a policy factory.
///
/// Cloning a spec (or sharing it across threads) costs one `Arc` bump; every
/// [`run`](SimulationSpec::run) builds its own engine and policy instances,
/// so a single spec can replay any number of workloads, sequentially or in
/// parallel, with identical results for identical inputs.
#[derive(Clone)]
pub struct SimulationSpec {
    /// Platform configuration shared by every run of this spec.
    pub config: PlatformConfig,
    /// Random seed for each run.
    pub seed: u64,
    /// Factory producing one fresh policy set per run.
    pub policies: Arc<dyn PolicyFactory>,
}

impl SimulationSpec {
    /// Creates a spec with the default configuration and baseline policies.
    pub fn new() -> Self {
        Self {
            config: PlatformConfig::default(),
            seed: 1,
            policies: Arc::new(BaselinePolicies),
        }
    }

    /// Sets the platform configuration.
    pub fn with_config(mut self, config: PlatformConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the policy factory.
    pub fn with_policies(mut self, policies: Arc<dyn PolicyFactory>) -> Self {
        self.policies = policies;
        self
    }

    /// Builds the single-use engine for one run over `workload`.
    pub fn engine(&self, workload: &WorkloadSpec) -> SimulationEngine {
        SimulationEngine::new(
            self.config.clone(),
            self.policies.keep_alive(workload),
            self.policies.prewarm(workload),
            self.policies.admission(workload),
            self.seed,
        )
    }

    /// Runs the workload once. The spec is borrowed, not consumed: call this
    /// as many times as needed, from as many threads as needed.
    pub fn run(&self, workload: &WorkloadSpec) -> (SimReport, Option<RegionTrace>) {
        self.engine(workload).run(workload)
    }

    /// Runs one lazily produced arrival stream against the workload's static
    /// tables (see [`SimulationEngine::run_streamed`]). `workload` may be an
    /// event-free header — only its function specs, profile, and calibration
    /// are read.
    pub fn run_streamed(
        &self,
        workload: &WorkloadSpec,
        events: impl ArrivalStream,
    ) -> (SimReport, Option<RegionTrace>) {
        self.engine(workload).run_streamed(workload, events)
    }

    /// Runs the workload sharded across `plan.shards()` worker threads, one
    /// timing-wheel engine per shard, reconciling shared capacity at epoch
    /// boundaries (see [`crate::shard`]).
    ///
    /// `streams` holds one arrival stream per shard, each yielding exactly
    /// the events of that shard's member functions (see
    /// `StreamedWorkload::stream_shard` and
    /// [`faas_workload::stream::ShardedStream`]); all must report the same
    /// horizon. The result — report bytes and trace bytes — is identical to
    /// [`run_streamed`](Self::run_streamed) over the unsharded stream, for
    /// every shard count: within an epoch every decision depends only on a
    /// function's own state, its own RNG stream, and the epoch-start
    /// snapshot, and the boundary merge is deterministic (shard-id order for
    /// anything ordered, commutative sums for the rest).
    ///
    /// # Panics
    ///
    /// Panics if the stream count does not match the plan, if the plan does
    /// not cover the workload table, or if the streams disagree on the
    /// horizon.
    pub fn run_sharded<S>(
        &self,
        workload: &WorkloadSpec,
        plan: &ShardPlan,
        streams: Vec<S>,
    ) -> (SimReport, Option<RegionTrace>)
    where
        S: ArrivalStream + Send,
    {
        let shards = plan.shards() as usize;
        assert_eq!(streams.len(), shards, "one arrival stream per shard");
        assert_eq!(
            plan.functions(),
            workload.functions.len(),
            "shard plan must cover the workload table"
        );
        assert!(
            streams
                .windows(2)
                .all(|w| w[0].horizon_ms() == w[1].horizon_ms()),
            "all shard streams must report the same horizon"
        );
        if shards == 1 {
            let stream = streams.into_iter().next().expect("one stream");
            return self.run_streamed(workload, stream);
        }

        // Policy names for the merged report; the factory builds a fresh
        // (identical) set per shard, so one more set just for labels is fine.
        let keep_alive_name = self.policies.keep_alive(workload).name().to_string();
        let prewarm_name = self.policies.prewarm(workload).name().to_string();
        let admission_name = self.policies.admission(workload).name().to_string();

        let shared = SharedEpochState::new(EpochLedger::new(&self.config), shards);
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = streams
                .into_iter()
                .enumerate()
                .map(|(shard, stream)| {
                    let members: Vec<u32> = plan
                        .member_indices(shard as u32)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect();
                    // The engine (and its policy boxes, which need not be
                    // `Send`) is constructed inside the thread; only the
                    // spec, the plan's members, and the stream cross.
                    scope.spawn(move || {
                        let engine = self.engine(workload);
                        let mut sync = SharedSync {
                            state: shared,
                            shard,
                        };
                        let snapshot = shared.initial_snapshot();
                        engine.run_shard(workload, stream, members, snapshot, &mut sync)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        merge_outcomes(
            workload,
            outcomes,
            shared.into_ledger(),
            (&keep_alive_name, &prewarm_name, &admission_name),
        )
    }
}

impl Default for SimulationSpec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use faas_workload::population::PopulationConfig;
    use faas_workload::profile::{Calibration, RegionProfile};

    fn tiny_workload(seed: u64) -> WorkloadSpec {
        WorkloadSpec::generate(
            &RegionProfile::r2(),
            Calibration {
                duration_days: 1,
                ..Calibration::default()
            },
            &PopulationConfig {
                function_scale: 0.002,
                volume_scale: 2.0e-6,
                max_requests_per_day: 2_000.0,
                min_functions: 15,
            },
            seed,
        )
    }

    #[test]
    fn spec_is_reusable_and_deterministic() {
        let workload = tiny_workload(21);
        let spec = SimulationSpec::new().with_seed(4);
        let (a, ta) = spec.run(&workload);
        let (b, tb) = spec.run(&workload);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        assert!(a.requests > 0);
    }

    #[test]
    fn spec_matches_compat_simulator() {
        let workload = tiny_workload(22);
        let (from_spec, _) = SimulationSpec::new().with_seed(7).run(&workload);
        let (from_builder, _) = Simulator::new().with_seed(7).run(&workload);
        assert_eq!(from_spec, from_builder);
    }

    #[test]
    fn spec_is_shareable_across_threads() {
        let workload = tiny_workload(23);
        let spec = SimulationSpec::new().with_seed(9);
        let (sequential, _) = spec.run(&workload);
        let reports: Vec<SimReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let spec = &spec;
                    let workload = &workload;
                    scope.spawn(move || spec.run(workload).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for report in reports {
            assert_eq!(report, sequential);
        }
    }

    #[test]
    fn baseline_factory_labels_policies() {
        let workload = tiny_workload(24);
        let factory = BaselinePolicies;
        assert_eq!(factory.label(), "baseline");
        assert_eq!(factory.keep_alive(&workload).name(), "fixed");
        assert_eq!(factory.prewarm(&workload).name(), "no-prewarm");
        assert_eq!(factory.admission(&workload).name(), "no-admission-control");
    }
}

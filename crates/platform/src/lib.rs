//! Discrete-event serverless platform simulator.
//!
//! This crate models the YuanRong-style platform of Section 2.2 of the paper
//! closely enough that (a) replaying a generated workload reproduces the
//! observable events the paper analyses — requests, cold starts with their
//! four component times, pod lifetimes — and (b) the mitigation strategies of
//! Section 5 (pre-warming, adaptive keep-alive, peak shaving of asynchronous
//! triggers, resource-pool prediction) can be evaluated as pluggable
//! policies.
//!
//! The model:
//!
//! * Each region has four clusters; requests are routed to a cluster by a
//!   hash of the function, spilling over to the least-loaded cluster when the
//!   target is hot (Section 2.1).
//! * Each cluster keeps pools of idle pods per CPU–memory configuration.
//!   A cold start takes a pod from the pool when one is available; otherwise
//!   the pod is created from scratch, which is much slower (the paper's
//!   explanation for the very long `Custom` runtime cold starts).
//! * A warm pod serves up to its function's concurrency limit, then waits for
//!   a keep-alive period (one minute by default) and is deleted if no request
//!   arrives (Figure 2).
//! * Cold-start component times are sampled from the calibrated
//!   [`faas_workload::ColdStartLatencyModel`]. With the opt-in node layer
//!   ([`node`]) enabled, the dependency-deployment component is replaced by
//!   an explicit layer pull against per-node LRU image caches — zero on a
//!   cache hit, bandwidth-shared under pull contention — and pods land on
//!   specific nodes chosen by a deterministic placement policy.
//!
//! The simulator emits both a [`SimReport`] (aggregate outcome metrics) and,
//! optionally, a full [`fntrace::RegionTrace`] so the characterization
//! pipeline can analyse simulated data exactly like measured data.
//!
//! # Entry points and scaling
//!
//! [`SimulationSpec::run_streamed`] drives one engine over any
//! [`faas_workload::stream::ArrivalStream`] in memory proportional to the
//! live state, not the event count.
//! [`SimulationSpec::run_sharded`](spec::SimulationSpec::run_sharded)
//! partitions a cell's function population across engine threads (one
//! timing wheel and arena per shard) and reconciles shared capacity at
//! fixed epoch boundaries ([`shard`]); its report and trace are
//! byte-identical to `run_streamed` for every shard count — the invariant
//! pinned by `tests/sharded_determinism.rs` and documented end to end in
//! the repository's `ARCHITECTURE.md`. Hot-path internals live in
//! [`event`] (hierarchical timing wheel) and [`arena`] (dense
//! index-addressed state).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod event;
pub mod keepalive;
pub mod node;
pub mod pod;
pub mod policy;
pub mod pool;
pub mod report;
pub mod shard;
pub mod simulator;
pub mod spec;
pub mod state;

pub use arena::{FnIdx, PodArena, PodIdx};
pub use cluster::ClusterState;
pub use config::PlatformConfig;
pub use engine::SimulationEngine;
pub use event::{Event, EventQueue};
pub use keepalive::{AdaptiveKeepAlive, FixedKeepAlive, KeepAlivePolicy, TimerAwareKeepAlive};
pub use node::{
    LayerKey, NodeClass, NodeModelConfig, NodePool, NodeScenario, NodeSnapshot, PlacementPolicy,
};
pub use pod::{Pod, PodState};
pub use policy::{
    AdmissionPolicy, FunctionView, NoAdmissionControl, NoPrewarm, PlatformView, PrewarmPolicy,
    PrewarmRequest,
};
pub use pool::{PoolConfig, ResourcePools};
pub use report::{FunctionStats, LatencyStats, SimReport};
pub use shard::{EpochLedger, EpochSnapshot, ShardDelta};
pub use simulator::Simulator;
pub use spec::{BaselinePolicies, PolicyFactory, SimulationSpec};

//! Pod state tracking.
//!
//! A pod follows the life cycle of Figure 2: it is created by a cold start
//! (or a pre-warm), serves up to its function's concurrency limit, waits for
//! the keep-alive period when idle, and is deleted if no further request
//! arrives. The simulator keeps per-pod counters (requests served, busy time)
//! so pod utility ratios (Figure 17) can be computed from simulation output
//! too.

use serde::{Deserialize, Serialize};

use fntrace::{ClusterId, FunctionId, PodId, ResourceConfig};

/// Life-cycle state of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodState {
    /// Created by a pre-warm policy and not yet used by any request.
    Prewarmed,
    /// At least one request is currently executing on the pod.
    Busy,
    /// No request in flight; the pod survives until its keep-alive expires.
    Idle,
    /// The pod has been deleted.
    Terminated,
}

/// A pod instance bound to one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pod {
    /// Unique pod identifier.
    pub id: PodId,
    /// Function whose code is deployed in the pod.
    pub function: FunctionId,
    /// Cluster hosting the pod.
    pub cluster: ClusterId,
    /// Node hosting the pod, when the node model is enabled (`None`
    /// otherwise). Indexes the run's [`crate::node::NodePool`] roster.
    pub node: Option<u32>,
    /// Resource configuration of the pod.
    pub config: ResourceConfig,
    /// Current state.
    pub state: PodState,
    /// Creation time (start of the cold start or pre-warm), milliseconds.
    pub created_ms: u64,
    /// Time the pod became ready to serve (cold start finished).
    pub ready_ms: u64,
    /// Cold-start duration paid to create this pod, microseconds (zero for
    /// pods handed over by a pre-warm that completed off the critical path).
    pub cold_start_us: u64,
    /// Number of requests currently executing.
    pub in_flight: u32,
    /// Total requests served over the pod's lifetime.
    pub served: u64,
    /// Accumulated busy time in milliseconds.
    pub busy_ms: u64,
    /// Last time the pod finished serving a request (keep-alive anchor).
    pub last_activity_ms: u64,
    /// Generation counter for keep-alive expiry events: bumping it
    /// invalidates previously scheduled expiries. Pods inserted into a
    /// recycled [`crate::arena::PodArena`] slot start at the slot's epoch
    /// (one past the previous occupant's final generation), so stale
    /// expiries queued against an earlier occupant can never match.
    pub expiry_generation: u64,
    /// Whether the pod was created by a pre-warm policy.
    pub prewarmed: bool,
}

impl Pod {
    /// Creates a pod that has just completed (or is completing) a cold start.
    pub fn new(
        id: PodId,
        function: FunctionId,
        cluster: ClusterId,
        config: ResourceConfig,
        created_ms: u64,
        cold_start_us: u64,
        prewarmed: bool,
    ) -> Self {
        let ready_ms = created_ms + cold_start_us.div_ceil(1000);
        Self {
            id,
            function,
            cluster,
            node: None,
            config,
            state: if prewarmed {
                PodState::Prewarmed
            } else {
                PodState::Busy
            },
            created_ms,
            ready_ms,
            cold_start_us,
            in_flight: 0,
            served: 0,
            busy_ms: 0,
            last_activity_ms: ready_ms,
            expiry_generation: 0,
            prewarmed,
        }
    }

    /// Marks the start of a request on this pod.
    pub fn begin_request(&mut self) {
        self.in_flight += 1;
        self.served += 1;
        self.state = PodState::Busy;
    }

    /// Marks the completion of a request at `now_ms` that ran for
    /// `busy_ms` milliseconds. Returns `true` when the pod became idle.
    pub fn complete_request(&mut self, now_ms: u64, busy_ms: u64) -> bool {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.busy_ms += busy_ms;
        self.last_activity_ms = self.last_activity_ms.max(now_ms);
        if self.in_flight == 0 {
            self.state = PodState::Idle;
            self.expiry_generation += 1;
            true
        } else {
            false
        }
    }

    /// Whether the pod can accept another request given the function's
    /// concurrency limit.
    pub fn has_capacity(&self, concurrency: u32) -> bool {
        self.state != PodState::Terminated && self.in_flight < concurrency.max(1)
    }

    /// Marks the pod deleted at `now_ms` and returns its lifetime statistics
    /// as `(lifetime_ms, served, busy_ms)`.
    pub fn terminate(&mut self, now_ms: u64) -> (u64, u64, u64) {
        self.state = PodState::Terminated;
        let lifetime = now_ms.saturating_sub(self.created_ms);
        (lifetime, self.served, self.busy_ms)
    }

    /// Useful lifetime in seconds: time from readiness to termination minus
    /// the trailing keep-alive wait, as used by the pod utility ratio
    /// (Section 4.5).
    pub fn useful_lifetime_secs(&self, terminated_ms: u64, keep_alive_ms: u64) -> f64 {
        terminated_ms
            .saturating_sub(keep_alive_ms)
            .saturating_sub(self.ready_ms) as f64
            / 1e3
    }

    /// Pod utility ratio: useful lifetime over cold-start time. Pods created
    /// for free (pre-warmed, zero cold start) report infinity.
    pub fn utility_ratio(&self, terminated_ms: u64, keep_alive_ms: u64) -> f64 {
        let cold_s = self.cold_start_us as f64 / 1e6;
        if cold_s <= 0.0 {
            return f64::INFINITY;
        }
        self.useful_lifetime_secs(terminated_ms, keep_alive_ms) / cold_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod() -> Pod {
        Pod::new(
            PodId::new(1),
            FunctionId::new(7),
            0,
            ResourceConfig::SMALL_300_128,
            1_000,
            500_000,
            false,
        )
    }

    #[test]
    fn new_pod_is_busy_and_ready_after_cold_start() {
        let p = pod();
        assert_eq!(p.state, PodState::Busy);
        assert_eq!(p.ready_ms, 1_500);
        assert_eq!(p.cold_start_us, 500_000);
        assert!(!p.prewarmed);
        let pre = Pod::new(
            PodId::new(2),
            FunctionId::new(7),
            0,
            ResourceConfig::SMALL_300_128,
            0,
            0,
            true,
        );
        assert_eq!(pre.state, PodState::Prewarmed);
    }

    #[test]
    fn request_lifecycle_updates_counters() {
        let mut p = pod();
        p.begin_request();
        assert_eq!(p.in_flight, 1);
        assert_eq!(p.served, 1);
        assert!(p.has_capacity(2));
        assert!(!p.has_capacity(1));
        p.begin_request();
        assert_eq!(p.in_flight, 2);
        assert!(!p.complete_request(2_000, 400));
        assert_eq!(p.state, PodState::Busy);
        assert!(p.complete_request(2_500, 900));
        assert_eq!(p.state, PodState::Idle);
        assert_eq!(p.busy_ms, 1_300);
        assert_eq!(p.last_activity_ms, 2_500);
        assert_eq!(p.expiry_generation, 1);
    }

    #[test]
    fn terminate_reports_lifetime() {
        let mut p = pod();
        p.begin_request();
        p.complete_request(61_000, 100);
        let (lifetime, served, busy) = p.terminate(121_000);
        assert_eq!(lifetime, 120_000);
        assert_eq!(served, 1);
        assert_eq!(busy, 100);
        assert_eq!(p.state, PodState::Terminated);
        assert!(!p.has_capacity(8));
    }

    #[test]
    fn utility_ratio_matches_definition() {
        let p = pod();
        // Ready at 1.5 s, terminated at 182 s, keep-alive 60 s: useful
        // lifetime 120.5 s over a 0.5 s cold start.
        let ratio = p.utility_ratio(182_000, 60_000);
        assert!((ratio - 241.0).abs() < 1e-9);
        // Shorter than keep-alive: useful lifetime is clamped to zero.
        assert_eq!(p.utility_ratio(31_000, 60_000), 0.0);
        // Zero cold start: infinite utility.
        let free = Pod::new(
            PodId::new(3),
            FunctionId::new(1),
            0,
            ResourceConfig::SMALL_300_128,
            0,
            0,
            true,
        );
        assert!(free.utility_ratio(10_000, 60_000).is_infinite());
    }
}

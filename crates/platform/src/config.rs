//! Simulator configuration.

use serde::{Deserialize, Serialize};

use crate::node::NodeModelConfig;
use crate::pool::PoolConfig;

/// Static configuration of the simulated platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of clusters per region (four in the paper's platform).
    pub clusters: u8,
    /// Resource-pool settings.
    pub pool: PoolConfig,
    /// Interval between pre-warm policy ticks, in milliseconds.
    pub prewarm_interval_ms: u64,
    /// Whether to record a full trace (request + cold-start tables) in
    /// addition to the aggregate report. Disable for large policy sweeps.
    pub record_trace: bool,
    /// A cluster is considered hot when it has this many more in-flight
    /// requests than the least loaded cluster; hot clusters spill new pods to
    /// the least-loaded cluster (Section 2.1's load balancing).
    pub hot_spot_threshold: u32,
    /// Length of one reconciliation epoch, in milliseconds (clamped to at
    /// least one).
    ///
    /// Shared capacity — resource pools and cluster in-flight counts — is
    /// observed through a snapshot taken at the last epoch boundary and
    /// settled at the next one (see [`crate::shard`]). The default matches
    /// the pre-warm and pool-replenish cadence, so shared state is exactly
    /// as fresh as the periodic policies that act on it. The epoch length is
    /// part of the simulation semantics: the same value must be used for a
    /// single-shard and an `n`-shard run to compare them, and changing it
    /// changes reported numbers.
    pub epoch_ms: u64,
    /// Node-level fidelity: per-node image caches, placement, and pull
    /// contention (see [`crate::node`]). `None` — the default — keeps the
    /// pre-node behaviour: pods land on clusters only and the
    /// dependency-deployment component of a cold start is the calibrated
    /// latency-model sample.
    pub node: Option<NodeModelConfig>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            clusters: 4,
            pool: PoolConfig::default(),
            prewarm_interval_ms: 60_000,
            record_trace: true,
            hot_spot_threshold: 64,
            epoch_ms: 60_000,
            node: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = PlatformConfig::default();
        assert_eq!(c.clusters, 4);
        assert_eq!(c.prewarm_interval_ms, 60_000);
        assert!(c.record_trace);
        assert_eq!(c.pool.replenish_interval_ms, 60_000);
        assert_eq!(c.epoch_ms, 60_000);
        assert!(c.node.is_none(), "node model is opt-in");
    }
}

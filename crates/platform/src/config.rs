//! Simulator configuration.

use serde::{Deserialize, Serialize};

use crate::pool::PoolConfig;

/// Static configuration of the simulated platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of clusters per region (four in the paper's platform).
    pub clusters: u8,
    /// Resource-pool settings.
    pub pool: PoolConfig,
    /// Interval between pre-warm policy ticks, in milliseconds.
    pub prewarm_interval_ms: u64,
    /// Whether to record a full trace (request + cold-start tables) in
    /// addition to the aggregate report. Disable for large policy sweeps.
    pub record_trace: bool,
    /// A cluster is considered hot when it has this many more in-flight
    /// requests than the least loaded cluster; hot clusters spill new pods to
    /// the least-loaded cluster (Section 2.1's load balancing).
    pub hot_spot_threshold: u32,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            clusters: 4,
            pool: PoolConfig::default(),
            prewarm_interval_ms: 60_000,
            record_trace: true,
            hot_spot_threshold: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = PlatformConfig::default();
        assert_eq!(c.clusters, 4);
        assert_eq!(c.prewarm_interval_ms, 60_000);
        assert!(c.record_trace);
        assert_eq!(c.pool.replenish_interval_ms, 60_000);
    }
}

//! Cluster routing state.
//!
//! A region is split into four clusters (Section 2.1). Requests for a
//! function are normally routed to one cluster chosen by hashing the function
//! name; when that cluster is hot (carrying many more in-flight requests than
//! the least loaded one), new pods are started on the least-loaded cluster
//! instead, which is the paper's description of inter-cluster load balancing.

use serde::{Deserialize, Serialize};

use fntrace::{ClusterId, FunctionId};

/// Per-cluster load counters for one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    in_flight: Vec<u32>,
    hot_spot_threshold: u32,
}

impl ClusterState {
    /// Creates the state for a region with `clusters` clusters.
    pub fn new(clusters: u8, hot_spot_threshold: u32) -> Self {
        Self {
            in_flight: vec![0; clusters.max(1) as usize],
            hot_spot_threshold,
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> u8 {
        self.in_flight.len() as u8
    }

    /// The cluster a function's requests hash to by default.
    pub fn home_cluster(&self, function: FunctionId) -> ClusterId {
        (function.raw() % self.in_flight.len() as u64) as ClusterId
    }

    /// Chooses the cluster for a new pod of `function`.
    ///
    /// Placement contract (pinned by unit tests; the node layer in
    /// [`crate::node`] builds on it):
    ///
    /// 1. The home cluster is used unless it is *hot*: carrying at least
    ///    `hot_spot_threshold` more in-flight requests than the least-loaded
    ///    cluster.
    /// 2. A hot home spills to the least-loaded cluster. Ties between
    ///    equally least-loaded clusters break by rotating over the tied set
    ///    with the function id (`function.raw() % ties`), not by picking the
    ///    lowest index, so simultaneous spills from many functions spread
    ///    over the tied clusters instead of herding onto the first one.
    ///
    /// The choice is a pure function of `(self, function)` — no RNG, no
    /// hidden state — so for a given seed it is byte-identical whatever the
    /// shard count or evaluation order.
    pub fn place_pod(&self, function: FunctionId) -> ClusterId {
        let home = self.home_cluster(function) as usize;
        let least = *self.in_flight.iter().min().expect("at least one cluster");
        let hot = u64::from(self.in_flight[home])
            >= u64::from(least) + u64::from(self.hot_spot_threshold);
        if !hot {
            return home as ClusterId;
        }
        let ties = self.in_flight.iter().filter(|&&l| l == least).count() as u64;
        let pick = (function.raw() % ties) as usize;
        self.in_flight
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == least)
            .nth(pick)
            .map(|(i, _)| i as ClusterId)
            .expect("tie set is non-empty")
    }

    /// Records the start of a request on a cluster.
    pub fn begin_request(&mut self, cluster: ClusterId) {
        if let Some(c) = self.in_flight.get_mut(cluster as usize) {
            *c += 1;
        }
    }

    /// Records the completion of a request on a cluster.
    pub fn complete_request(&mut self, cluster: ClusterId) {
        if let Some(c) = self.in_flight.get_mut(cluster as usize) {
            *c = c.saturating_sub(1);
        }
    }

    /// Total in-flight requests in the region.
    pub fn total_in_flight(&self) -> u32 {
        self.in_flight.iter().sum()
    }

    /// In-flight requests on one cluster.
    pub fn in_flight(&self, cluster: ClusterId) -> u32 {
        self.in_flight.get(cluster as usize).copied().unwrap_or(0)
    }

    /// Applies one epoch's net in-flight deltas, one entry per cluster.
    ///
    /// Deltas beyond the cluster count are ignored and each counter clamps
    /// at zero, mirroring the bounds-checked saturating behaviour of the
    /// incremental [`begin_request`](Self::begin_request) /
    /// [`complete_request`](Self::complete_request) pair. Summing per-shard
    /// deltas and applying them here is commutative, which is what makes the
    /// epoch merge order-independent (see [`crate::shard`]).
    pub fn apply_delta(&mut self, delta: &[i64]) {
        for (c, &d) in self.in_flight.iter_mut().zip(delta) {
            let updated = i64::from(*c) + d;
            *c = u32::try_from(updated.max(0)).unwrap_or(u32::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_within_range() {
        let s = ClusterState::new(4, 16);
        assert_eq!(s.clusters(), 4);
        let f = FunctionId::new(10);
        assert_eq!(s.home_cluster(f), s.home_cluster(f));
        assert!(s.home_cluster(f) < 4);
        assert_eq!(s.home_cluster(FunctionId::new(7)), 3);
    }

    #[test]
    fn zero_clusters_clamped_to_one() {
        let s = ClusterState::new(0, 4);
        assert_eq!(s.clusters(), 1);
        assert_eq!(s.home_cluster(FunctionId::new(99)), 0);
    }

    #[test]
    fn request_counters() {
        let mut s = ClusterState::new(2, 4);
        s.begin_request(0);
        s.begin_request(0);
        s.begin_request(1);
        assert_eq!(s.total_in_flight(), 3);
        assert_eq!(s.in_flight(0), 2);
        s.complete_request(0);
        assert_eq!(s.in_flight(0), 1);
        s.complete_request(1);
        s.complete_request(1);
        assert_eq!(s.in_flight(1), 0, "saturating");
        // Out-of-range clusters are ignored.
        s.begin_request(9);
        s.complete_request(9);
        assert_eq!(s.total_in_flight(), 1);
    }

    #[test]
    fn hot_cluster_spills_to_least_loaded() {
        let mut s = ClusterState::new(4, 8);
        let f = FunctionId::new(4); // Home cluster 0.
        assert_eq!(s.home_cluster(f), 0);
        assert_eq!(s.place_pod(f), 0);
        for _ in 0..10 {
            s.begin_request(0);
        }
        // Cluster 0 is now hot relative to the empty clusters.
        let placed = s.place_pod(f);
        assert_ne!(placed, 0);
        // Relief: once the home cluster cools down, placement returns home.
        for _ in 0..10 {
            s.complete_request(0);
        }
        assert_eq!(s.place_pod(f), 0);
    }

    #[test]
    fn hot_spill_rotates_over_least_loaded_ties_by_function_id() {
        let mut s = ClusterState::new(4, 2);
        // Home cluster 0 hot; clusters 1..4 all idle -> a three-way tie.
        for _ in 0..5 {
            s.begin_request(0);
        }
        // Functions with home cluster 0 rotate over the tied set {1, 2, 3}:
        // raw % 3 picks the 0th, 1st, 2nd tied cluster respectively.
        assert_eq!(s.place_pod(FunctionId::new(0)), 1);
        assert_eq!(s.place_pod(FunctionId::new(4)), 2);
        assert_eq!(s.place_pod(FunctionId::new(8)), 3);
        assert_eq!(s.place_pod(FunctionId::new(12)), 1);
        // Breaking the tie collapses the choice to the unique minimum.
        s.begin_request(1);
        s.begin_request(3);
        assert_eq!(s.place_pod(FunctionId::new(0)), 2);
        assert_eq!(s.place_pod(FunctionId::new(4)), 2);
    }

    #[test]
    fn hot_threshold_boundary_is_inclusive() {
        let mut s = ClusterState::new(2, 3);
        let f = FunctionId::new(0); // Home cluster 0.
        s.begin_request(0);
        s.begin_request(0);
        // Load 2 < least (0) + threshold (3): still home.
        assert_eq!(s.place_pod(f), 0);
        s.begin_request(0);
        // Load 3 >= 0 + 3: exactly at the threshold counts as hot.
        assert_eq!(s.place_pod(f), 1);
    }

    #[test]
    fn placement_is_a_pure_function_of_state() {
        let mut s = ClusterState::new(4, 1);
        for _ in 0..9 {
            s.begin_request(2);
        }
        s.begin_request(1);
        for f in 0..64 {
            let f = FunctionId::new(f);
            let first = s.place_pod(f);
            // Same state, same function -> same cluster, every time.
            assert_eq!(s.place_pod(f), first);
            assert_eq!(s.place_pod(f), first);
        }
    }
}

//! Index-addressed arenas for the simulation hot path.
//!
//! The event loop used to key every lookup by hashed 64-bit identifiers
//! ([`fntrace::FunctionId`], [`fntrace::PodId`]) through `HashMap`s — one or
//! more hash-and-probe per event. This module replaces those maps with dense
//! `u32` indices into plain `Vec`s, so handling an internal event is pure
//! index arithmetic.
//!
//! # Id-allocation scheme
//!
//! Two id spaces coexist; only the *public* one is ever observable in
//! reports and traces, which is what keeps outputs byte-identical across
//! engine internals:
//!
//! * **Public ids** are shard-count-invariant: [`fntrace::FunctionId`] is
//!   the hashed 64-bit function identifier from the workload, and
//!   [`fntrace::PodId`] is minted as
//!   `(region << 48) | (global_index << 26) | counter`, where
//!   `global_index` is the function's dense position in the *full* workload
//!   table and `counter` is a never-reused, per-function monotone counter.
//!   Deriving the id from the function (rather than one run-global counter)
//!   means a pod's id does not depend on how many shards the run used or
//!   which functions share its engine — the property the sharded
//!   byte-equality contract rests on (see [`crate::shard`]). Request ids
//!   are minted the same way. Everything written to a trace or a report
//!   uses these.
//! * **Dense ids** are run-internal. [`FnIdx`] is a function's position in
//!   the run's [`faas_workload::WorkloadSpec::functions`] table, assigned
//!   once at state construction (one `HashMap<FunctionId, FnIdx>` lookup per
//!   *external* arrival resolves the public id; every internal event then
//!   carries the dense index). [`PodIdx`] is a slot in [`PodArena`],
//!   recycled through a free list when pods terminate.
//!
//! # Slot recycling and expiry generations
//!
//! Pod slots are reused, but pending [`PodExpire`](crate::Event::PodExpire)
//! events in the queue may still reference a slot's *previous* occupant.
//! With map-keyed pods this was impossible by construction (public pod ids
//! are never reused); with a slab it is neutralized by continuing the expiry
//! generation across occupants: a slot remembers its last occupant's final
//! `expiry_generation`, and the next pod inserted into that slot starts one
//! generation later. Any stale expiry therefore carries a generation the new
//! occupant can never match, and is ignored by the existing generation
//! check. Generations never appear in any output, so the offset is free.
//!
//! # Determinism
//!
//! Index allocation is a pure function of the (deterministic) simulation
//! event sequence: the free list is LIFO and iteration helpers walk slots in
//! index order, so two runs of the same spec make identical decisions —
//! including across threads, which is what the session layer's
//! parallel == sequential byte-equality guarantee rests on.

use crate::pod::Pod;

/// Dense index of a function in one run's workload table.
///
/// Assigned at state construction as the function's position in
/// [`faas_workload::WorkloadSpec::functions`]; valid only within that run.
/// See the [module docs](self) for the id-allocation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnIdx(u32);

impl FnIdx {
    /// Wraps a raw dense index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw index value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The index as a usize, for table addressing.
    pub(crate) const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense slot index of a pod in a [`PodArena`].
///
/// Slots are recycled when pods terminate, so a `PodIdx` is only meaningful
/// while its occupant is live; stale references held by queued expiry events
/// are disarmed by the generation scheme described in the
/// [module docs](self). The public [`fntrace::PodId`] of the occupant is
/// unaffected by recycling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PodIdx(u32);

impl PodIdx {
    /// Wraps a raw slot index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw slot value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The slot as a usize, for table addressing.
    pub(crate) const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Slab-style arena of live pods with a LIFO free list.
///
/// Insertion reuses the most recently freed slot (or grows the backing
/// `Vec`), so the arena's footprint tracks the *peak* live-pod count rather
/// than the total number of pods ever created. Each slot also carries the
/// dense [`FnIdx`] of its occupant's function — the event loop needs it on
/// every completion and expiry, and storing it beside the slot avoids
/// re-resolving the pod's public function id.
#[derive(Debug, Default)]
pub struct PodArena {
    slots: Vec<Option<Pod>>,
    /// Dense function index of each slot's occupant (stale when vacant).
    fns: Vec<FnIdx>,
    /// Starting expiry generation for each slot's *next* occupant; advanced
    /// past the departing occupant's final generation on removal.
    epochs: Vec<u64>,
    /// Vacant slots, reused LIFO.
    free: Vec<PodIdx>,
    live: u32,
}

impl PodArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a pod for the function at `function`, returning its slot.
    ///
    /// The pod's `expiry_generation` is initialised to the slot's current
    /// epoch so that expiry events scheduled against any previous occupant
    /// can never match (see the [module docs](self)).
    pub fn insert(&mut self, mut pod: Pod, function: FnIdx) -> PodIdx {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                pod.expiry_generation = self.epochs[idx.index()];
                self.slots[idx.index()] = Some(pod);
                self.fns[idx.index()] = function;
                idx
            }
            None => {
                let idx = PodIdx::new(self.slots.len() as u32);
                self.slots.push(Some(pod));
                self.fns.push(function);
                self.epochs.push(0);
                idx
            }
        }
    }

    /// The pod in `idx`, if the slot is occupied.
    pub fn get(&self, idx: PodIdx) -> Option<&Pod> {
        self.slots.get(idx.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to the pod in `idx`, if the slot is occupied.
    pub fn get_mut(&mut self, idx: PodIdx) -> Option<&mut Pod> {
        self.slots.get_mut(idx.index()).and_then(|s| s.as_mut())
    }

    /// Mutable access plus the occupant's dense function index.
    pub fn get_mut_with_fn(&mut self, idx: PodIdx) -> Option<(&mut Pod, FnIdx)> {
        let function = *self.fns.get(idx.index())?;
        self.slots
            .get_mut(idx.index())
            .and_then(|s| s.as_mut())
            .map(|pod| (pod, function))
    }

    /// Removes and returns the pod in `idx` together with its function
    /// index, freeing the slot for reuse. The slot's generation epoch is
    /// advanced past the departing pod's final `expiry_generation`.
    pub fn remove(&mut self, idx: PodIdx) -> Option<(Pod, FnIdx)> {
        let pod = self.slots.get_mut(idx.index())?.take()?;
        self.epochs[idx.index()] = pod.expiry_generation + 1;
        self.free.push(idx);
        self.live -= 1;
        Some((pod, self.fns[idx.index()]))
    }

    /// Number of live pods.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Whether no pods are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots of all live pods, in ascending slot order (deterministic).
    pub fn live_indices(&self) -> impl Iterator<Item = PodIdx> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| PodIdx::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fntrace::{FunctionId, PodId, ResourceConfig};

    fn pod(id: u64) -> Pod {
        Pod::new(
            PodId::new(id),
            FunctionId::new(7),
            0,
            ResourceConfig::SMALL_300_128,
            0,
            0,
            false,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = PodArena::new();
        let f = FnIdx::new(3);
        let a = arena.insert(pod(1), f);
        let b = arena.insert(pod(2), f);
        assert_ne!(a, b);
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).unwrap().id, PodId::new(1));
        let (removed, removed_fn) = arena.remove(a).unwrap();
        assert_eq!(removed.id, PodId::new(1));
        assert_eq!(removed_fn, f);
        assert!(arena.get(a).is_none());
        assert!(arena.remove(a).is_none(), "double remove is a no-op");
        assert_eq!(arena.live(), 1);
        assert!(!arena.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut arena = PodArena::new();
        let f = FnIdx::new(0);
        let a = arena.insert(pod(1), f);
        let b = arena.insert(pod(2), f);
        arena.remove(a);
        arena.remove(b);
        // Most recently freed slot comes back first.
        assert_eq!(arena.insert(pod(3), f), b);
        assert_eq!(arena.insert(pod(4), f), a);
        assert_eq!(arena.live(), 2);
    }

    #[test]
    fn generations_continue_across_occupants() {
        let mut arena = PodArena::new();
        let f = FnIdx::new(0);
        let a = arena.insert(pod(1), f);
        // First occupant bumps its generation a few times while serving.
        arena.get_mut(a).unwrap().expiry_generation = 5;
        arena.remove(a);
        // The next occupant of the slot starts strictly later, so an expiry
        // scheduled against the old occupant (generation <= 5) never fires.
        let b = arena.insert(pod(2), f);
        assert_eq!(b, a, "slot reused");
        assert_eq!(arena.get(b).unwrap().expiry_generation, 6);
    }

    #[test]
    fn live_indices_walk_in_slot_order() {
        let mut arena = PodArena::new();
        let f = FnIdx::new(0);
        let ids: Vec<PodIdx> = (1..=4).map(|i| arena.insert(pod(i), f)).collect();
        arena.remove(ids[1]);
        let live: Vec<PodIdx> = arena.live_indices().collect();
        assert_eq!(live, vec![ids[0], ids[2], ids[3]]);
    }

    #[test]
    fn get_mut_with_fn_reports_the_occupants_function() {
        let mut arena = PodArena::new();
        let a = arena.insert(pod(1), FnIdx::new(9));
        let (p, f) = arena.get_mut_with_fn(a).unwrap();
        assert_eq!(p.id, PodId::new(1));
        assert_eq!(f, FnIdx::new(9));
        arena.remove(a);
        assert!(arena.get_mut_with_fn(a).is_none());
    }
}

//! Builder-style compatibility wrapper around the simulation engine.
//!
//! [`Simulator`] is the original single-run API: configure policies with the
//! builder methods, then consume the simulator with [`Simulator::run`]. It is
//! now a thin shim over [`SimulationEngine`];
//! code that wants to replay the same configuration many times (policy
//! ablations, the experiment grid) should use
//! [`SimulationSpec`](crate::spec::SimulationSpec) instead, which replicates
//! runs from a shared [`PolicyFactory`](crate::spec::PolicyFactory).

use faas_workload::WorkloadSpec;
use fntrace::RegionTrace;

use crate::config::PlatformConfig;
use crate::engine::SimulationEngine;
use crate::keepalive::{FixedKeepAlive, KeepAlivePolicy};
use crate::policy::{AdmissionPolicy, NoAdmissionControl, NoPrewarm, PrewarmPolicy};
use crate::report::SimReport;

/// Discrete-event simulator for one region (single-use builder API).
pub struct Simulator {
    config: PlatformConfig,
    keep_alive: Box<dyn KeepAlivePolicy>,
    prewarm: Box<dyn PrewarmPolicy>,
    admission: Box<dyn AdmissionPolicy>,
    seed: u64,
}

impl Simulator {
    /// Creates a simulator with the default configuration and baseline
    /// policies (fixed one-minute keep-alive, no pre-warming, no admission
    /// control).
    pub fn new() -> Self {
        Self {
            config: PlatformConfig::default(),
            keep_alive: Box::new(FixedKeepAlive::default()),
            prewarm: Box::new(NoPrewarm),
            admission: Box::new(NoAdmissionControl),
            seed: 1,
        }
    }

    /// Sets the platform configuration.
    pub fn with_config(mut self, config: PlatformConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the keep-alive policy.
    pub fn with_keep_alive(mut self, policy: Box<dyn KeepAlivePolicy>) -> Self {
        self.keep_alive = policy;
        self
    }

    /// Sets the pre-warm policy.
    pub fn with_prewarm(mut self, policy: Box<dyn PrewarmPolicy>) -> Self {
        self.prewarm = policy;
        self
    }

    /// Sets the admission (peak shaving) policy.
    pub fn with_admission(mut self, policy: Box<dyn AdmissionPolicy>) -> Self {
        self.admission = policy;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the workload, returning the report and, when trace recording is
    /// enabled, the full simulated region trace.
    pub fn run(self, workload: &WorkloadSpec) -> (SimReport, Option<RegionTrace>) {
        SimulationEngine::new(
            self.config,
            self.keep_alive,
            self.prewarm,
            self.admission,
            self.seed,
        )
        .run(workload)
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_workload::population::PopulationConfig;
    use faas_workload::profile::{Calibration, RegionProfile};
    use faas_workload::WorkloadSpec;

    fn tiny_workload(days: u32, seed: u64) -> WorkloadSpec {
        WorkloadSpec::generate(
            &RegionProfile::r2(),
            Calibration {
                duration_days: days,
                ..Calibration::default()
            },
            &PopulationConfig {
                function_scale: 0.002,
                volume_scale: 2.0e-6,
                max_requests_per_day: 2_000.0,
                min_functions: 15,
            },
            seed,
        )
    }

    #[test]
    fn simulation_accounts_for_every_request() {
        let workload = tiny_workload(1, 1);
        let (report, trace) = Simulator::new().run(&workload);
        assert_eq!(report.requests, workload.len() as u64);
        assert_eq!(report.requests, report.warm_starts + report.cold_starts);
        assert!(report.cold_starts > 0);
        let trace = trace.expect("trace recorded by default");
        assert_eq!(trace.requests.len() as u64, report.requests);
        assert_eq!(trace.cold_starts.len() as u64, report.cold_starts);
    }

    #[test]
    fn simulation_is_deterministic() {
        let workload = tiny_workload(1, 2);
        let (a, ta) = Simulator::new().with_seed(9).run(&workload);
        let (b, tb) = Simulator::new().with_seed(9).run(&workload);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        let (c, _) = Simulator::new().with_seed(10).run(&workload);
        assert_eq!(a.requests, c.requests);
        assert_ne!(a.cold_start_latency.mean_s, c.cold_start_latency.mean_s);
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let workload = tiny_workload(1, 3);
        let (report, trace) = Simulator::new()
            .with_config(PlatformConfig {
                record_trace: false,
                ..PlatformConfig::default()
            })
            .run(&workload);
        assert!(trace.is_none());
        assert!(report.requests > 0);
    }

    #[test]
    fn cold_start_components_sum_in_simulated_trace() {
        let workload = tiny_workload(1, 4);
        let (_, trace) = Simulator::new().run(&workload);
        let trace = trace.unwrap();
        assert!(!trace.cold_starts.is_empty());
        for cs in trace.cold_starts.records() {
            assert_eq!(cs.component_sum_us(), cs.cold_start_us);
        }
        // Every cold-started pod serves at least one request.
        let request_pods: std::collections::HashSet<_> =
            trace.requests.records().iter().map(|r| r.pod).collect();
        for cs in trace.cold_starts.records() {
            assert!(request_pods.contains(&cs.pod));
        }
    }

    #[test]
    fn longer_keep_alive_reduces_cold_starts() {
        let workload = tiny_workload(2, 5);
        let (short, _) = Simulator::new()
            .with_keep_alive(Box::new(FixedKeepAlive {
                duration_ms: 10_000,
            }))
            .run(&workload);
        let (long, _) = Simulator::new()
            .with_keep_alive(Box::new(FixedKeepAlive {
                duration_ms: 600_000,
            }))
            .run(&workload);
        assert!(
            long.cold_starts < short.cold_starts,
            "long {} short {}",
            long.cold_starts,
            short.cold_starts
        );
        // But longer keep-alive wastes more idle pod time.
        assert!(long.idle_pod_time_s > short.idle_pod_time_s);
    }

    #[test]
    fn pods_are_reused_for_frequent_functions() {
        let workload = tiny_workload(1, 6);
        let (report, _) = Simulator::new().run(&workload);
        assert!(report.warm_starts > 0, "no warm starts at all");
        assert!(report.cold_start_rate() < 1.0);
        assert!(report.peak_live_pods > 0);
        assert!(report.pod_lifetime_s > 0.0);
        assert!(report.idle_pod_time_s > 0.0);
        assert!(report.idle_fraction() <= 1.0);
    }

    #[test]
    fn report_names_reflect_policies() {
        let workload = tiny_workload(1, 7);
        let (report, _) = Simulator::new().run(&workload);
        assert_eq!(report.keep_alive_policy, "fixed");
        assert_eq!(report.prewarm_policy, "no-prewarm");
        assert_eq!(report.admission_policy, "no-admission-control");
        assert_eq!(report.delayed_requests, 0);
        assert_eq!(report.prewarmed_pods, 0);
    }
}

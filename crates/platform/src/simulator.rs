//! The discrete-event simulation loop.
//!
//! [`Simulator`] replays a [`faas_workload::WorkloadSpec`] through the
//! platform model: warm-pod reuse, resource pools, cold-start component
//! sampling, keep-alive expiry, cluster placement, and the pluggable
//! pre-warming / admission policies. It produces an aggregate [`SimReport`]
//! and (optionally) a full [`fntrace::RegionTrace`] of the simulated events.

use std::collections::HashMap;

use faas_stats::rng::Xoshiro256pp;
use faas_workload::{ColdStartLatencyModel, FunctionSpec, WorkloadSpec};
use fntrace::{
    ColdStartRecord, FunctionId, FunctionMeta, PodId, RegionTrace, RequestId, RequestRecord,
    MILLIS_PER_DAY, MILLIS_PER_HOUR,
};

use crate::cluster::ClusterState;
use crate::config::PlatformConfig;
use crate::event::{Event, EventQueue};
use crate::keepalive::{FixedKeepAlive, FunctionHistory, KeepAlivePolicy};
use crate::pod::{Pod, PodState};
use crate::policy::{
    AdmissionPolicy, FunctionView, NoAdmissionControl, NoPrewarm, PlatformView, PrewarmPolicy,
};
use crate::pool::{PoolAcquire, ResourcePools};
use crate::report::{LatencyStats, SimReport};

/// Discrete-event simulator for one region.
pub struct Simulator {
    config: PlatformConfig,
    keep_alive: Box<dyn KeepAlivePolicy>,
    prewarm: Box<dyn PrewarmPolicy>,
    admission: Box<dyn AdmissionPolicy>,
    seed: u64,
}

impl Simulator {
    /// Creates a simulator with the default configuration and baseline
    /// policies (fixed one-minute keep-alive, no pre-warming, no admission
    /// control).
    pub fn new() -> Self {
        Self {
            config: PlatformConfig::default(),
            keep_alive: Box::new(FixedKeepAlive::default()),
            prewarm: Box::new(NoPrewarm),
            admission: Box::new(NoAdmissionControl),
            seed: 1,
        }
    }

    /// Sets the platform configuration.
    pub fn with_config(mut self, config: PlatformConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the keep-alive policy.
    pub fn with_keep_alive(mut self, policy: Box<dyn KeepAlivePolicy>) -> Self {
        self.keep_alive = policy;
        self
    }

    /// Sets the pre-warm policy.
    pub fn with_prewarm(mut self, policy: Box<dyn PrewarmPolicy>) -> Self {
        self.prewarm = policy;
        self
    }

    /// Sets the admission (peak shaving) policy.
    pub fn with_admission(mut self, policy: Box<dyn AdmissionPolicy>) -> Self {
        self.admission = policy;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the workload, returning the report and, when trace recording is
    /// enabled, the full simulated region trace.
    pub fn run(mut self, workload: &WorkloadSpec) -> (SimReport, Option<RegionTrace>) {
        let mut state = SimState::new(workload, &self.config, self.seed);
        let duration = workload.duration_ms();

        // Initial periodic ticks.
        state
            .queue
            .push(self.config.prewarm_interval_ms, Event::PrewarmTick);
        state.queue.push(
            self.config.pool.replenish_interval_ms.max(1),
            Event::PoolReplenishTick,
        );

        for event in &workload.events {
            while let Some((t, e)) = state.queue.pop_due(event.timestamp_ms) {
                self.handle_internal(&mut state, t, e, duration);
            }
            self.handle_arrival(&mut state, event.function, event.timestamp_ms, true);
        }
        // Drain the remaining internal events (completions, expiries, final
        // ticks). Periodic ticks are not rescheduled past the duration.
        while let Some((t, e)) = state.queue.pop() {
            self.handle_internal(&mut state, t, e, duration);
        }
        // Terminate anything still alive at the end of the horizon.
        let live: Vec<PodId> = state.pods.keys().copied().collect();
        for pod_id in live {
            state.finalize_pod(pod_id, duration);
        }

        let report = state.into_report(
            self.keep_alive.name(),
            self.prewarm.name(),
            self.admission.name(),
        );
        report
    }

    fn handle_internal(&mut self, state: &mut SimState<'_>, t: u64, event: Event, duration: u64) {
        match event {
            Event::RequestComplete { pod, busy_ms } => state.complete_request(
                pod,
                t,
                busy_ms,
                self.keep_alive.as_ref(),
            ),
            Event::PodExpire { pod, generation } => state.expire_pod(pod, t, generation),
            Event::DelayedArrival { function } => {
                self.handle_arrival(state, function, t, false);
            }
            Event::PrewarmTick => {
                if t <= duration {
                    let view = state.platform_view(t);
                    let requests = self.prewarm.prewarm(&view);
                    for req in requests {
                        for _ in 0..req.count {
                            state.prewarm_pod(req.function, t, self.keep_alive.as_ref());
                        }
                    }
                    state.reset_recent_arrivals();
                    state
                        .queue
                        .push(t + self.config.prewarm_interval_ms.max(1), Event::PrewarmTick);
                }
            }
            Event::PoolReplenishTick => {
                if t <= duration {
                    state.pools.replenish();
                    state.queue.push(
                        t + self.config.pool.replenish_interval_ms.max(1),
                        Event::PoolReplenishTick,
                    );
                }
            }
        }
    }

    fn handle_arrival(
        &mut self,
        state: &mut SimState<'_>,
        function: FunctionId,
        t: u64,
        allow_delay: bool,
    ) {
        if allow_delay {
            state.observe_arrival(function, t);
            let view = state.function_view(function, t);
            if let Some(view) = view {
                if view.trigger.synchronicity() == fntrace::Synchronicity::Asynchronous {
                    let delay = self.admission.delay_ms(&view, t);
                    if delay > 0 {
                        state.report.delayed_requests += 1;
                        state.report.total_admission_delay_s += delay as f64 / 1e3;
                        state.added_latency_s += delay as f64 / 1e3;
                        state
                            .queue
                            .push(t + delay, Event::DelayedArrival { function });
                        return;
                    }
                }
            }
        }
        state.dispatch(function, t, self.keep_alive.as_ref());
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Mutable simulation state.
struct SimState<'a> {
    workload: &'a WorkloadSpec,
    config: PlatformConfig,
    specs: HashMap<FunctionId, &'a FunctionSpec>,
    latency_model: ColdStartLatencyModel,
    rng: Xoshiro256pp,
    queue: EventQueue,
    pools: ResourcePools,
    clusters: ClusterState,
    pods: HashMap<PodId, Pod>,
    warm_by_function: HashMap<FunctionId, Vec<PodId>>,
    histories: HashMap<FunctionId, FunctionHistory>,
    recent_arrivals: HashMap<FunctionId, u64>,
    next_pod_id: u64,
    next_request_id: u64,
    report: SimReport,
    cold_latencies_s: Vec<f64>,
    added_latency_s: f64,
    trace: Option<RegionTrace>,
    peak_live_pods: u32,
}

impl<'a> SimState<'a> {
    fn new(workload: &'a WorkloadSpec, config: &PlatformConfig, seed: u64) -> Self {
        let specs = workload
            .functions
            .iter()
            .map(|f| (f.function, f))
            .collect();
        let trace = if config.record_trace {
            let mut trace = RegionTrace::new(workload.region);
            for spec in &workload.functions {
                trace.functions.insert(FunctionMeta {
                    function: spec.function,
                    user: spec.user,
                    runtime: spec.runtime,
                    triggers: spec.triggers.clone(),
                    config: spec.config,
                });
            }
            Some(trace)
        } else {
            None
        };
        Self {
            workload,
            config: config.clone(),
            specs,
            latency_model: ColdStartLatencyModel::new(workload.profile.clone()),
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x5151_5151),
            queue: EventQueue::new(),
            pools: ResourcePools::new(config.pool.clone()),
            clusters: ClusterState::new(config.clusters, config.hot_spot_threshold),
            pods: HashMap::new(),
            warm_by_function: HashMap::new(),
            histories: HashMap::new(),
            recent_arrivals: HashMap::new(),
            next_pod_id: 0,
            next_request_id: 0,
            report: SimReport::default(),
            cold_latencies_s: Vec::new(),
            added_latency_s: 0.0,
            trace,
            peak_live_pods: 0,
        }
    }

    fn observe_arrival(&mut self, function: FunctionId, t: u64) {
        self.histories.entry(function).or_default().observe_arrival(t);
        *self.recent_arrivals.entry(function).or_insert(0) += 1;
    }

    fn reset_recent_arrivals(&mut self) {
        self.recent_arrivals.clear();
    }

    fn function_view(&self, function: FunctionId, _now_ms: u64) -> Option<FunctionView> {
        let spec = self.specs.get(&function)?;
        let history = self.histories.get(&function);
        let warm = self
            .warm_by_function
            .get(&function)
            .map(|v| v.len() as u32)
            .unwrap_or(0);
        Some(FunctionView {
            function,
            runtime: spec.runtime,
            trigger: spec.primary_trigger(),
            config: spec.config,
            timer_period_secs: spec.timer_period_secs,
            warm_pods: warm,
            arrivals: history.map(|h| h.arrivals).unwrap_or(0),
            cold_starts: history.map(|h| h.cold_starts).unwrap_or(0),
            recent_arrivals: self.recent_arrivals.get(&function).copied().unwrap_or(0),
            last_arrival_ms: history.and_then(|h| h.last_arrival()),
        })
    }

    fn platform_view(&self, now_ms: u64) -> PlatformView {
        let functions = self
            .workload
            .functions
            .iter()
            .filter_map(|f| self.function_view(f.function, now_ms))
            .collect::<Vec<_>>();
        PlatformView {
            now_ms,
            total_warm_pods: self.pods.len() as u32,
            pooled_idle_pods: self.pools.total_idle(),
            functions,
        }
    }

    /// Samples one cold start for `function` and registers the new pod.
    /// Returns the pod id and its cold-start duration in microseconds.
    fn create_pod(
        &mut self,
        function: FunctionId,
        t: u64,
        prewarmed: bool,
    ) -> Option<(PodId, u64)> {
        let spec = *self.specs.get(&function)?;
        let cluster = self.clusters.place_pod(function);
        let acquire = self
            .pools
            .acquire(spec.config, spec.runtime.has_reserved_pool());
        let day = (t / MILLIS_PER_DAY) as u32;
        let hour = ((t % MILLIS_PER_DAY) / MILLIS_PER_HOUR) as f64;
        let load_factor = self
            .workload
            .profile
            .load_multiplier(&self.workload.calibration, day, hour);
        let mut components = self.latency_model.sample(
            spec.runtime,
            spec.config.size_class(),
            spec.has_dependencies,
            load_factor,
            &mut self.rng,
        );
        if acquire == PoolAcquire::FromScratch && spec.runtime.has_reserved_pool() {
            // The pool was empty: pay the from-scratch allocation path.
            components.pod_alloc_us = (components.pod_alloc_us as f64
                * self.config.pool.scratch_allocation_multiplier)
                as u64;
        }

        self.next_pod_id += 1;
        let pod_id = PodId::new((u64::from(self.workload.region.index()) << 48) | self.next_pod_id);
        let pod = Pod::new(
            pod_id,
            function,
            cluster,
            spec.config,
            t,
            components.total_us(),
            prewarmed,
        );
        self.pods.insert(pod_id, pod);
        self.warm_by_function.entry(function).or_default().push(pod_id);
        self.peak_live_pods = self.peak_live_pods.max(self.pods.len() as u32);

        if !prewarmed {
            self.report.cold_starts += 1;
            self.cold_latencies_s.push(components.total_secs());
            self.added_latency_s += components.total_secs();
            self.histories.entry(function).or_default().observe_cold_start();
            if let Some(trace) = self.trace.as_mut() {
                trace.cold_starts.push(ColdStartRecord {
                    timestamp_ms: t,
                    pod: pod_id,
                    cluster,
                    function,
                    user: spec.user,
                    cold_start_us: components.total_us(),
                    pod_alloc_us: components.pod_alloc_us,
                    deploy_code_us: components.deploy_code_us,
                    deploy_dep_us: components.deploy_dep_us,
                    scheduling_us: components.scheduling_us,
                });
            }
        } else {
            self.report.prewarmed_pods += 1;
        }
        match acquire {
            PoolAcquire::FromPool => self.report.pool_hits += 1,
            PoolAcquire::FromScratch => self.report.scratch_creations += 1,
        }
        Some((pod_id, components.total_us()))
    }

    /// Dispatches one admitted request.
    fn dispatch(&mut self, function: FunctionId, t: u64, keep_alive: &dyn KeepAlivePolicy) {
        let Some(spec) = self.specs.get(&function).copied() else {
            return;
        };
        self.report.requests += 1;

        // Pick the most recently active warm pod with spare capacity that is
        // already ready to serve.
        let warm_pod = self
            .warm_by_function
            .get(&function)
            .and_then(|pods| {
                pods.iter()
                    .filter_map(|id| self.pods.get(id))
                    .filter(|p| p.has_capacity(spec.concurrency) && p.ready_ms <= t)
                    .max_by_key(|p| p.last_activity_ms)
                    .map(|p| p.id)
            });

        let exec_secs = (spec.median_execution_secs
            * (0.6 * self.rng.standard_normal()).exp())
        .clamp(1e-4, 600.0);
        let exec_ms = (exec_secs * 1e3).ceil() as u64;

        let (pod_id, startup_ms) = match warm_pod {
            Some(pod_id) => {
                self.report.warm_starts += 1;
                (pod_id, 0)
            }
            None => match self.create_pod(function, t, false) {
                Some((pod_id, cold_us)) => (pod_id, cold_us.div_ceil(1000)),
                None => return,
            },
        };

        let pod = self.pods.get_mut(&pod_id).expect("pod exists");
        let was_prewarmed_unused = pod.prewarmed && pod.served == 0;
        pod.begin_request();
        if was_prewarmed_unused {
            self.report.prewarmed_pods_used += 1;
        }
        let cluster = pod.cluster;
        self.clusters.begin_request(cluster);
        self.queue.push(
            t + startup_ms + exec_ms,
            Event::RequestComplete {
                pod: pod_id,
                busy_ms: exec_ms,
            },
        );

        if let Some(trace) = self.trace.as_mut() {
            self.next_request_id += 1;
            let cpu = (spec.cpu_millicores * (0.3 * self.rng.standard_normal()).exp())
                .clamp(5.0, spec.config.millicores as f64);
            let memory =
                ((spec.memory_bytes as f64) * (0.9 + 0.2 * self.rng.next_f64())).round() as u64;
            trace.requests.push(RequestRecord {
                timestamp_ms: t,
                pod: pod_id,
                cluster,
                function,
                user: spec.user,
                request: RequestId::new(self.next_request_id),
                execution_time_us: (exec_secs * 1e6) as u64,
                cpu_usage_millicores: cpu,
                memory_usage_bytes: memory,
            });
        }
        let _ = keep_alive;
    }

    fn complete_request(
        &mut self,
        pod_id: PodId,
        t: u64,
        busy_ms: u64,
        keep_alive: &dyn KeepAlivePolicy,
    ) {
        let Some(pod) = self.pods.get_mut(&pod_id) else {
            return;
        };
        let cluster = pod.cluster;
        let function = pod.function;
        let became_idle = pod.complete_request(t, busy_ms);
        self.clusters.complete_request(cluster);
        if became_idle {
            let history = self.histories.entry(function).or_default();
            let ka = keep_alive.keep_alive_ms(function, history);
            let generation = pod.expiry_generation;
            self.queue.push(t + ka.max(1), Event::PodExpire { pod: pod_id, generation });
        }
    }

    fn expire_pod(&mut self, pod_id: PodId, t: u64, generation: u64) {
        let valid = self
            .pods
            .get(&pod_id)
            .map(|p| {
                p.in_flight == 0
                    && p.expiry_generation == generation
                    && p.state != PodState::Terminated
            })
            .unwrap_or(false);
        if valid {
            self.finalize_pod(pod_id, t);
        }
    }

    /// Removes a pod from the live set and accounts its lifetime.
    fn finalize_pod(&mut self, pod_id: PodId, t: u64) {
        let Some(mut pod) = self.pods.remove(&pod_id) else {
            return;
        };
        let function = pod.function;
        let (lifetime_ms, _served, busy_ms) = pod.terminate(t);
        self.report.pod_lifetime_s += lifetime_ms as f64 / 1e3;
        let startup_ms = pod.cold_start_us / 1000;
        self.report.idle_pod_time_s +=
            lifetime_ms.saturating_sub(busy_ms + startup_ms) as f64 / 1e3;
        if let Some(list) = self.warm_by_function.get_mut(&function) {
            list.retain(|id| *id != pod_id);
        }
    }

    /// Creates a pre-warmed pod whose startup cost is paid off the critical
    /// path; it joins the warm set once ready and expires like any idle pod.
    fn prewarm_pod(&mut self, function: FunctionId, t: u64, keep_alive: &dyn KeepAlivePolicy) {
        if let Some((pod_id, _cold_us)) = self.create_pod(function, t, true) {
            let history = self.histories.entry(function).or_default();
            let ka = keep_alive.keep_alive_ms(function, history);
            let pod = self.pods.get(&pod_id).expect("pod exists");
            let generation = pod.expiry_generation;
            self.queue.push(
                pod.ready_ms + ka.max(1),
                Event::PodExpire { pod: pod_id, generation },
            );
        }
    }

    fn into_report(
        mut self,
        keep_alive: &'static str,
        prewarm: &'static str,
        admission: &'static str,
    ) -> (SimReport, Option<RegionTrace>) {
        self.report.cold_start_latency = LatencyStats::from_secs(&self.cold_latencies_s);
        self.report.mean_added_latency_s = if self.report.requests == 0 {
            0.0
        } else {
            self.added_latency_s / self.report.requests as f64
        };
        self.report.peak_live_pods = self.peak_live_pods;
        self.report.keep_alive_policy = keep_alive.to_string();
        self.report.prewarm_policy = prewarm.to_string();
        self.report.admission_policy = admission.to_string();
        // Pool statistics.
        self.report.pool_hits = self.pools.pool_hits();
        self.report.scratch_creations = self.pools.scratch_creations();
        let mut trace = self.trace;
        if let Some(trace) = trace.as_mut() {
            trace.sort_by_time();
        }
        (self.report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_workload::population::PopulationConfig;
    use faas_workload::profile::{Calibration, RegionProfile};
    use faas_workload::WorkloadSpec;

    fn tiny_workload(days: u32, seed: u64) -> WorkloadSpec {
        WorkloadSpec::generate(
            &RegionProfile::r2(),
            Calibration {
                duration_days: days,
                ..Calibration::default()
            },
            &PopulationConfig {
                function_scale: 0.002,
                volume_scale: 2.0e-6,
                max_requests_per_day: 2_000.0,
                min_functions: 15,
            },
            seed,
        )
    }

    #[test]
    fn simulation_accounts_for_every_request() {
        let workload = tiny_workload(1, 1);
        let (report, trace) = Simulator::new().run(&workload);
        assert_eq!(report.requests, workload.len() as u64);
        assert_eq!(report.requests, report.warm_starts + report.cold_starts);
        assert!(report.cold_starts > 0);
        let trace = trace.expect("trace recorded by default");
        assert_eq!(trace.requests.len() as u64, report.requests);
        assert_eq!(trace.cold_starts.len() as u64, report.cold_starts);
    }

    #[test]
    fn simulation_is_deterministic() {
        let workload = tiny_workload(1, 2);
        let (a, ta) = Simulator::new().with_seed(9).run(&workload);
        let (b, tb) = Simulator::new().with_seed(9).run(&workload);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        let (c, _) = Simulator::new().with_seed(10).run(&workload);
        assert_eq!(a.requests, c.requests);
        assert_ne!(a.cold_start_latency.mean_s, c.cold_start_latency.mean_s);
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let workload = tiny_workload(1, 3);
        let (report, trace) = Simulator::new()
            .with_config(PlatformConfig {
                record_trace: false,
                ..PlatformConfig::default()
            })
            .run(&workload);
        assert!(trace.is_none());
        assert!(report.requests > 0);
    }

    #[test]
    fn cold_start_components_sum_in_simulated_trace() {
        let workload = tiny_workload(1, 4);
        let (_, trace) = Simulator::new().run(&workload);
        let trace = trace.unwrap();
        assert!(!trace.cold_starts.is_empty());
        for cs in trace.cold_starts.records() {
            assert_eq!(cs.component_sum_us(), cs.cold_start_us);
        }
        // Every cold-started pod serves at least one request.
        let request_pods: std::collections::HashSet<_> =
            trace.requests.records().iter().map(|r| r.pod).collect();
        for cs in trace.cold_starts.records() {
            assert!(request_pods.contains(&cs.pod));
        }
    }

    #[test]
    fn longer_keep_alive_reduces_cold_starts() {
        let workload = tiny_workload(2, 5);
        let (short, _) = Simulator::new()
            .with_keep_alive(Box::new(FixedKeepAlive { duration_ms: 10_000 }))
            .run(&workload);
        let (long, _) = Simulator::new()
            .with_keep_alive(Box::new(FixedKeepAlive { duration_ms: 600_000 }))
            .run(&workload);
        assert!(
            long.cold_starts < short.cold_starts,
            "long {} short {}",
            long.cold_starts,
            short.cold_starts
        );
        // But longer keep-alive wastes more idle pod time.
        assert!(long.idle_pod_time_s > short.idle_pod_time_s);
    }

    #[test]
    fn pods_are_reused_for_frequent_functions() {
        let workload = tiny_workload(1, 6);
        let (report, _) = Simulator::new().run(&workload);
        assert!(report.warm_starts > 0, "no warm starts at all");
        assert!(report.cold_start_rate() < 1.0);
        assert!(report.peak_live_pods > 0);
        assert!(report.pod_lifetime_s > 0.0);
        assert!(report.idle_pod_time_s > 0.0);
        assert!(report.idle_fraction() <= 1.0);
    }

    #[test]
    fn report_names_reflect_policies() {
        let workload = tiny_workload(1, 7);
        let (report, _) = Simulator::new().run(&workload);
        assert_eq!(report.keep_alive_policy, "fixed");
        assert_eq!(report.prewarm_policy, "no-prewarm");
        assert_eq!(report.admission_policy, "no-admission-control");
        assert_eq!(report.delayed_requests, 0);
        assert_eq!(report.prewarmed_pods, 0);
    }
}

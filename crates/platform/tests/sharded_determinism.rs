//! Cross-shard determinism: `run_sharded(n)` must produce exactly the
//! `SimReport` and `RegionTrace` of `run_streamed` over the unsharded
//! stream, for every shard count `n` — the contract that makes intra-cell
//! sharding a pure performance knob rather than a semantic one (see
//! `faas_platform::shard` and ARCHITECTURE.md).
//!
//! The suite covers the baseline policy set, a stateful policy set that
//! exercises every cross-shard touchpoint (pre-warm ticks, pool draws,
//! admission delays, adaptive keep-alive histories), and the epoch-boundary
//! edge cases called out in the design: more shards than functions (empty
//! shards), an epoch longer than the whole horizon, a one-second epoch, and
//! pools so scarce they exhaust within an epoch.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use faas_platform::keepalive::FunctionHistory;
use faas_platform::{
    AdaptiveKeepAlive, AdmissionPolicy, FunctionView, KeepAlivePolicy, PlatformConfig,
    PlatformView, PolicyFactory, PrewarmPolicy, PrewarmRequest, SimulationSpec,
};
use faas_workload::population::PopulationConfig;
use faas_workload::profile::{Calibration, RegionProfile};
use faas_workload::stream::StreamedWorkload;
use faas_workload::{ShardPlan, WorkloadSpec};
use fntrace::FunctionId;
use fntrace::TriggerType;
use proptest::prelude::*;

fn population(min_functions: usize) -> PopulationConfig {
    PopulationConfig {
        function_scale: 0.002,
        volume_scale: 2.0e-6,
        max_requests_per_day: 2_000.0,
        min_functions,
    }
}

fn calibration(days: u32) -> Calibration {
    Calibration {
        duration_days: days,
        ..Calibration::default()
    }
}

fn region(index: u16) -> RegionProfile {
    RegionProfile::paper_region(index.clamp(1, 5)).expect("paper regions 1..=5 exist")
}

/// Runs the unsharded baseline once, then asserts every sharded run over the
/// same workload reproduces it byte for byte (reports and traces are
/// `PartialEq` over every field, including the full request/cold-start
/// tables when tracing is on).
fn assert_shard_invariant(
    spec: &SimulationSpec,
    streamed: &StreamedWorkload,
    shard_counts: &[u32],
) {
    let header = streamed.header();
    let (base_report, base_trace) = spec.run_streamed(header, streamed.stream());
    for &shards in shard_counts {
        let plan = ShardPlan::new(&header.functions, shards);
        let streams: Vec<_> = (0..plan.shards())
            .map(|s| streamed.stream_shard(&plan, s))
            .collect();
        let (report, trace) = spec.run_sharded(header, &plan, streams);
        assert_eq!(report, base_report, "report diverged at shards={shards}");
        assert_eq!(trace, base_trace, "trace diverged at shards={shards}");
    }
}

fn streamed_workload(seed: u64, min_functions: usize, days: u32) -> StreamedWorkload {
    StreamedWorkload::generate(
        &region(2),
        calibration(days),
        &population(min_functions),
        seed,
    )
}

// ---------------------------------------------------------------------------
// A deliberately busy policy set: every policy is stateful and per-function,
// so the test exercises pre-warm pool draws, delayed arrivals crossing epoch
// boundaries, and keep-alive histories — all the machinery that could
// plausibly observe shard layout.
// ---------------------------------------------------------------------------

/// Pre-warms one pod for any function that saw traffic in the last interval
/// but has no warm pod — a per-function rule (shard-safe by construction)
/// that fires often enough to drain pools.
struct DemandPrewarm;

impl PrewarmPolicy for DemandPrewarm {
    fn prewarm(&mut self, view: &PlatformView) -> Vec<PrewarmRequest> {
        view.functions
            .iter()
            .filter(|f| f.recent_arrivals > 0 && f.warm_pods == 0)
            .map(|f| PrewarmRequest {
                function: f.function,
                count: 1,
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "test-demand-prewarm"
    }
}

/// Delays every k-th asynchronous arrival of each function by a
/// deterministic, per-function amount long enough to cross epoch boundaries.
struct EveryOtherDelay {
    seen: std::collections::HashMap<u64, u64>,
}

impl AdmissionPolicy for EveryOtherDelay {
    fn delay_ms(&mut self, view: &FunctionView, _now_ms: u64) -> u64 {
        if view.trigger == TriggerType::ApigSync {
            return 0;
        }
        let count = self.seen.entry(view.function.raw()).or_insert(0);
        *count += 1;
        if (*count).is_multiple_of(2) {
            // Long enough to hop a 1 s epoch, short enough to land in-horizon.
            1_500 + (view.function.raw() % 7) * 400
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "test-every-other-delay"
    }
}

/// Keep-alive driven by the lazily sorted quantile cache with a hysteresis
/// map — the platform substrate the adaptive policy layer builds on. Reads
/// `iat_quantile_ms`/`iat_dispersion` on every decision so the sorted-cache
/// rebuild path runs under sharding, and keeps interior-mutable per-function
/// state exactly the way the core-crate quantile policy does.
struct QuantileProbeKeepAlive {
    applied: RefCell<HashMap<u64, u64>>,
}

impl KeepAlivePolicy for QuantileProbeKeepAlive {
    fn keep_alive_ms(&self, function: FunctionId, history: &FunctionHistory) -> u64 {
        let Some(q90) = history.iat_quantile_ms(0.9) else {
            return 45_000;
        };
        // Fold the dispersion in so both new accessors sit on the hot path.
        let spread = history.iat_dispersion().unwrap_or(1.0).clamp(1.0, 8.0);
        let target = (((q90 as f64) * spread.sqrt()) as u64).clamp(2_000, 600_000);
        let mut applied = self.applied.borrow_mut();
        let slot = applied.entry(function.raw()).or_insert(target);
        if target.abs_diff(*slot) > *slot / 5 {
            *slot = target;
        }
        *slot
    }

    fn name(&self) -> &'static str {
        "test-quantile-probe"
    }
}

struct QuantileProbePolicies;

impl PolicyFactory for QuantileProbePolicies {
    fn keep_alive(&self, _workload: &WorkloadSpec) -> Box<dyn KeepAlivePolicy> {
        Box::new(QuantileProbeKeepAlive {
            applied: RefCell::new(HashMap::new()),
        })
    }

    fn prewarm(&self, _workload: &WorkloadSpec) -> Box<dyn PrewarmPolicy> {
        Box::new(DemandPrewarm)
    }

    fn admission(&self, _workload: &WorkloadSpec) -> Box<dyn AdmissionPolicy> {
        Box::new(EveryOtherDelay {
            seen: std::collections::HashMap::new(),
        })
    }

    fn label(&self) -> &str {
        "quantile-probe-policies"
    }
}

struct BusyPolicies;

impl PolicyFactory for BusyPolicies {
    fn keep_alive(&self, _workload: &WorkloadSpec) -> Box<dyn KeepAlivePolicy> {
        Box::new(AdaptiveKeepAlive::default())
    }

    fn prewarm(&self, _workload: &WorkloadSpec) -> Box<dyn PrewarmPolicy> {
        Box::new(DemandPrewarm)
    }

    fn admission(&self, _workload: &WorkloadSpec) -> Box<dyn AdmissionPolicy> {
        Box::new(EveryOtherDelay {
            seen: std::collections::HashMap::new(),
        })
    }

    fn label(&self) -> &str {
        "busy-test-policies"
    }
}

// ---------------------------------------------------------------------------
// Deterministic fixed-case tests.
// ---------------------------------------------------------------------------

#[test]
fn baseline_policies_are_shard_count_invariant() {
    let streamed = streamed_workload(11, 18, 1);
    let spec = SimulationSpec::new().with_seed(5);
    assert_shard_invariant(&spec, &streamed, &[1, 2, 3, 4, 5, 8]);
}

#[test]
fn stateful_policies_are_shard_count_invariant() {
    let streamed = streamed_workload(12, 16, 1);
    let spec = SimulationSpec::new()
        .with_seed(6)
        .with_policies(Arc::new(BusyPolicies));
    assert_shard_invariant(&spec, &streamed, &[2, 3, 4, 7]);
}

#[test]
fn quantile_cache_backed_keepalive_is_shard_count_invariant_1_through_8() {
    let streamed = streamed_workload(18, 16, 1);
    let spec = SimulationSpec::new()
        .with_seed(12)
        .with_policies(Arc::new(QuantileProbePolicies));
    assert_shard_invariant(&spec, &streamed, &[1, 2, 3, 4, 5, 6, 7, 8]);
}

#[test]
fn more_shards_than_functions_leaves_empty_shards_harmless() {
    let streamed = streamed_workload(13, 8, 1);
    let functions = streamed.header().functions.len() as u32;
    let spec = SimulationSpec::new().with_seed(7);
    // Shard counts beyond the population force at least one shard with zero
    // member functions, whose engine must idle through every epoch barrier
    // without contributing anything.
    assert_shard_invariant(&spec, &streamed, &[functions, functions + 3, functions * 2]);
}

#[test]
fn epoch_longer_than_horizon_degenerates_to_one_epoch() {
    let streamed = streamed_workload(14, 12, 1);
    let config = PlatformConfig {
        epoch_ms: 30 * 24 * 60 * 60 * 1_000, // one epoch spanning the run
        ..PlatformConfig::default()
    };
    let spec = SimulationSpec::new().with_seed(8).with_config(config);
    assert_shard_invariant(&spec, &streamed, &[2, 4]);
}

#[test]
fn one_second_epochs_reconcile_identically() {
    let streamed = streamed_workload(15, 10, 1);
    let config = PlatformConfig {
        epoch_ms: 1_000,
        ..PlatformConfig::default()
    };
    let spec = SimulationSpec::new()
        .with_seed(9)
        .with_config(config)
        .with_policies(Arc::new(BusyPolicies));
    assert_shard_invariant(&spec, &streamed, &[2, 4]);
}

#[test]
fn scarce_pools_exhausting_within_an_epoch_stay_invariant() {
    let streamed = streamed_workload(16, 14, 1);
    let mut config = PlatformConfig::default();
    // One pooled pod per configuration and no replenishment: the aggregate
    // draw budget runs dry mid-epoch, so the boundary clamp (and the
    // documented oversubscription approximation) is on the hot path.
    config.pool.target_per_config = 1;
    config.pool.replenish_per_tick = 0;
    let spec = SimulationSpec::new()
        .with_seed(10)
        .with_config(config)
        .with_policies(Arc::new(BusyPolicies));
    assert_shard_invariant(&spec, &streamed, &[2, 3, 5]);
}

#[test]
fn trace_recording_off_still_matches() {
    let streamed = streamed_workload(17, 10, 1);
    let config = PlatformConfig {
        record_trace: false,
        ..PlatformConfig::default()
    };
    let spec = SimulationSpec::new().with_seed(11).with_config(config);
    assert_shard_invariant(&spec, &streamed, &[2, 4]);
}

// ---------------------------------------------------------------------------
// Property-based sweep over seeds, populations, shard counts, and epochs.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn run_sharded_equals_run_streamed(
        seed in 0u64..200,
        min_functions in 6usize..20,
        shards in 2u32..9,
        epoch_choice in 0usize..3,
    ) {
        let streamed = streamed_workload(seed, min_functions, 1);
        let epoch_ms = [60_000, 7_000, 600_000][epoch_choice];
        let config = PlatformConfig {
            epoch_ms,
            ..PlatformConfig::default()
        };
        let spec = SimulationSpec::new()
            .with_seed(seed.wrapping_add(1))
            .with_config(config);
        let header = streamed.header();
        let (base_report, base_trace) = spec.run_streamed(header, streamed.stream());
        let plan = ShardPlan::new(&header.functions, shards);
        let streams: Vec<_> = (0..plan.shards())
            .map(|s| streamed.stream_shard(&plan, s))
            .collect();
        let (report, trace) = spec.run_sharded(header, &plan, streams);
        prop_assert_eq!(report, base_report);
        prop_assert_eq!(trace, base_trace);
    }
}

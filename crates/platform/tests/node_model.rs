//! Node-model invariants: shard-count determinism of node/cache state and
//! exact per-component cold-start attribution.
//!
//! Two contracts from the node layer's design (see `faas_platform::node` and
//! ARCHITECTURE.md):
//!
//! 1. With the node model enabled — any placement policy, any scenario
//!    preset — `run_sharded(n)` must reproduce `run_streamed` byte for byte
//!    for shard counts 1 through 8: placement, cache hits, and pull
//!    contention are all epoch-quantized functions of seeded state.
//! 2. The per-component attribution block is exact: the integer component
//!    sums in `SimReport.cold_components` always equal the independently
//!    accumulated `cold_us_total`, and every traced cold-start record's
//!    components sum to its total, mirroring the `fntrace::synth` invariant.

use faas_platform::{
    NodeModelConfig, NodeScenario, PlacementPolicy, PlatformConfig, SimReport, SimulationSpec,
};
use faas_workload::population::PopulationConfig;
use faas_workload::profile::{Calibration, RegionProfile};
use faas_workload::stream::StreamedWorkload;
use faas_workload::ShardPlan;
use fntrace::RegionTrace;
use proptest::prelude::*;

fn streamed_workload(seed: u64, min_functions: usize) -> StreamedWorkload {
    StreamedWorkload::generate(
        &RegionProfile::paper_region(2).expect("paper region 2 exists"),
        Calibration {
            duration_days: 1,
            ..Calibration::default()
        },
        &PopulationConfig {
            function_scale: 0.002,
            volume_scale: 2.0e-6,
            max_requests_per_day: 2_000.0,
            min_functions,
        },
        seed,
    )
}

/// Components must sum exactly — in the report and in every trace record.
fn assert_components_exact(report: &SimReport, trace: &Option<RegionTrace>) {
    assert_eq!(
        report.cold_components.total_us(),
        report.cold_us_total,
        "component totals must sum exactly to the charged total"
    );
    if let Some(trace) = trace {
        let mut sum = 0u64;
        for cs in trace.cold_starts.records() {
            assert_eq!(cs.component_sum_us(), cs.cold_start_us);
            sum += cs.cold_start_us;
        }
        // Traced cold starts are exactly the charged (non-prewarmed) ones.
        assert_eq!(sum, report.cold_us_total);
        assert_eq!(trace.cold_starts.len() as u64, report.cold_starts);
    }
    for f in &report.per_function {
        assert!(f.components.total_us() <= report.cold_us_total);
    }
}

fn assert_node_shard_invariant(spec: &SimulationSpec, streamed: &StreamedWorkload) {
    let header = streamed.header();
    let (base_report, base_trace) = spec.run_streamed(header, streamed.stream());
    assert_components_exact(&base_report, &base_trace);
    for shards in 1..=8u32 {
        let plan = ShardPlan::new(&header.functions, shards);
        let streams: Vec<_> = (0..plan.shards())
            .map(|s| streamed.stream_shard(&plan, s))
            .collect();
        let (report, trace) = spec.run_sharded(header, &plan, streams);
        assert_eq!(report, base_report, "report diverged at shards={shards}");
        assert_eq!(trace, base_trace, "trace diverged at shards={shards}");
    }
}

#[test]
fn every_placement_policy_is_shard_count_invariant() {
    for (i, placement) in PlacementPolicy::ALL.into_iter().enumerate() {
        let streamed = streamed_workload(21 + i as u64, 14);
        let config = PlatformConfig {
            node: Some(NodeModelConfig {
                placement,
                ..NodeModelConfig::default()
            }),
            ..PlatformConfig::default()
        };
        let spec = SimulationSpec::new()
            .with_seed(31 + i as u64)
            .with_config(config);
        assert_node_shard_invariant(&spec, &streamed);
    }
}

#[test]
fn every_node_scenario_is_shard_count_invariant() {
    for (i, scenario) in NodeScenario::ALL.into_iter().enumerate() {
        let streamed = streamed_workload(41 + i as u64, 12);
        let config = scenario.platform(&PlatformConfig::default());
        let spec = SimulationSpec::new()
            .with_seed(51 + i as u64)
            .with_config(config);
        assert_node_shard_invariant(&spec, &streamed);
    }
}

#[test]
fn rolling_deploy_in_horizon_invalidates_under_sharding() {
    // The stock RollingDeploy preset redeploys at six hours; also pin an
    // aggressive variant whose deploy lands mid-epoch early in the run so
    // the rolling invalidation overlaps live pull traffic.
    let streamed = streamed_workload(61, 12);
    let mut node = NodeScenario::RollingDeploy.node_config();
    node.redeploy_at_ms = Some(90_000);
    let config = PlatformConfig {
        node: Some(node),
        ..PlatformConfig::default()
    };
    let spec = SimulationSpec::new().with_seed(62).with_config(config);
    assert_node_shard_invariant(&spec, &streamed);
}

#[test]
fn short_epochs_with_node_contention_stay_invariant() {
    let streamed = streamed_workload(63, 10);
    // Tiny caches plus 5-second epochs: pressure and cache churn settle at
    // every boundary, maximising the chances of catching an order-dependent
    // merge.
    let mut node = NodeScenario::CacheColdFailover.node_config();
    node.classes_per_cluster[0].0.cache_layers = 2;
    let config = PlatformConfig {
        epoch_ms: 5_000,
        node: Some(node),
        ..PlatformConfig::default()
    };
    let spec = SimulationSpec::new().with_seed(64).with_config(config);
    assert_node_shard_invariant(&spec, &streamed);
}

#[test]
fn node_model_reports_layer_traffic_and_is_off_by_default() {
    let streamed = streamed_workload(65, 14);
    let header = streamed.header();

    let off = SimulationSpec::new().with_seed(66);
    let (off_report, _) = off.run_streamed(header, streamed.stream());
    assert_eq!(off_report.layer_pulls, 0);
    assert_eq!(off_report.layer_cache_hits, 0);
    assert_components_exact(&off_report, &None);

    let on = SimulationSpec::new()
        .with_seed(66)
        .with_config(NodeScenario::CacheColdFailover.platform(&PlatformConfig::default()));
    let (on_report, _) = on.run_streamed(header, streamed.stream());
    // The generated population always contains dependency-deploying
    // functions, so an enabled node model must observe layer traffic.
    assert!(on_report.layer_pulls > 0, "expected layer pulls");
    assert!(on_report.layer_cache_hits > 0, "expected cache hits");
    // Same seed, same workload: only the dependency component may differ
    // from the model being on, never the request counts.
    assert_eq!(on_report.requests, off_report.requests);
}

proptest! {
    // Mirror the `fntrace::synth` components-sum invariant at the report
    // level: across random seeds, populations, and node-model settings, the
    // summed per-component attribution equals the independently summed
    // cold-start total, exactly.
    #[test]
    fn components_always_sum_exactly_to_total(
        seed in 0u64..64,
        min_functions in 6usize..16,
        scenario in 0usize..4,
    ) {
        let streamed = streamed_workload(seed, min_functions);
        let node = match scenario {
            0 => None,
            i => Some(NodeScenario::ALL[i - 1].node_config()),
        };
        let config = PlatformConfig { node, ..PlatformConfig::default() };
        let spec = SimulationSpec::new()
            .with_seed(seed.wrapping_add(7))
            .with_config(config);
        let (report, trace) = spec.run_streamed(streamed.header(), streamed.stream());
        prop_assert_eq!(report.cold_components.total_us(), report.cold_us_total);
        if let Some(trace) = trace {
            let mut sum = 0u64;
            for cs in trace.cold_starts.records() {
                prop_assert_eq!(cs.component_sum_us(), cs.cold_start_us);
                sum += cs.cold_start_us;
            }
            prop_assert_eq!(sum, report.cold_us_total);
        }
    }
}

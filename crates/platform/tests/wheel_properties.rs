//! Property-based tests for the hierarchical timing wheel behind
//! [`faas_platform::EventQueue`].
//!
//! The wheel replaced a `BinaryHeap<(time, seq)>`, and the simulator's
//! determinism contract requires it to be observationally identical: every
//! pop sequence must match what the heap would have produced — ascending
//! time, FIFO within a timestamp, regardless of which wheel level (or the
//! far-future overflow heap) an event landed in. These tests drive the
//! wheel against exactly that heap as an oracle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use faas_platform::{Event, EventQueue, PodIdx};
use proptest::prelude::*;

/// Reference model: the `BinaryHeap` the wheel replaced. Push order is the
/// tie-break for equal timestamps, matching the wheel's FIFO guarantee.
#[derive(Default)]
struct HeapOracle {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    seq: u64,
}

impl HeapOracle {
    fn push(&mut self, time_ms: u64, tag: u64) {
        self.heap.push(Reverse((time_ms, self.seq)));
        // The tag rides in the low bits of the sequence payload so pops can
        // be compared; sequence numbers grow by tag-capacity per push.
        debug_assert!(tag < TAG_SPAN);
        self.seq += TAG_SPAN;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((t, s))| (t, s))
    }

    fn pop_due(&mut self, horizon: u64) -> Option<(u64, u64)> {
        match self.heap.peek() {
            Some(Reverse((t, _))) if *t <= horizon => self.pop(),
            _ => None,
        }
    }
}

/// Tags are carried through the wheel inside `RequestComplete::busy_ms`, so
/// a pop can be matched back to the push that produced it.
const TAG_SPAN: u64 = 1 << 20;

fn tagged(tag: u64) -> Event {
    Event::RequestComplete {
        pod: PodIdx::new(0),
        busy_ms: tag,
    }
}

fn tag_of(event: Event) -> u64 {
    match event {
        Event::RequestComplete { busy_ms, .. } => busy_ms,
        other => panic!("unexpected event {other:?}"),
    }
}

/// Times that exercise every placement class: the current level-0 slot,
/// higher wheel levels, and the > 2^32 ms overflow heap.
fn arb_time() -> impl Strategy<Value = u64> {
    (0u64..4, 0u64..1 << 10, 0u64..1 << 26, 0u64..1 << 34).prop_map(|(class, near, mid, far)| {
        match class {
            0 => near,            // level 0 / same-slot collisions
            1 => mid,             // levels 1-3
            2 => (1 << 26) + mid, // deep level boundaries
            _ => far,             // spills into the overflow heap
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    // Draining a fully loaded wheel yields the heap's exact total order:
    // ascending time, push-order FIFO for equal timestamps, with overflow
    // events cascading back in at the right position.
    #[test]
    fn drain_matches_heap_oracle(times in proptest::collection::vec(arb_time(), 1..400)) {
        let mut queue = EventQueue::new();
        let mut oracle = HeapOracle::default();
        for (i, &t) in times.iter().enumerate() {
            queue.push(t, tagged(i as u64));
            oracle.push(t, i as u64);
        }
        prop_assert_eq!(queue.len(), times.len());
        let mut popped = 0usize;
        while let Some((t, event)) = queue.pop() {
            let (ot, oseq) = oracle.pop().expect("oracle has as many events");
            prop_assert_eq!(t, ot, "pop {} time diverged", popped);
            prop_assert_eq!(tag_of(event), oseq / TAG_SPAN, "pop {} order diverged", popped);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert!(oracle.pop().is_none());
        prop_assert!(queue.is_empty());
    }

    // Same-timestamp bursts drain in exactly their push order (FIFO), even
    // when interleaved with events at other timestamps.
    #[test]
    fn equal_timestamps_drain_fifo(
        burst_time in 0u64..1 << 20,
        burst in 2usize..64,
        others in proptest::collection::vec(arb_time(), 0..50),
    ) {
        let mut queue = EventQueue::new();
        let mut oracle = HeapOracle::default();
        let mut tag = 0u64;
        for &t in &others {
            queue.push(t, tagged(tag));
            oracle.push(t, tag);
            tag += 1;
        }
        for _ in 0..burst {
            queue.push(burst_time, tagged(tag));
            oracle.push(burst_time, tag);
            tag += 1;
        }
        let mut burst_tags = Vec::new();
        while let Some((t, event)) = queue.pop() {
            let (ot, oseq) = oracle.pop().expect("oracle in sync");
            prop_assert_eq!((t, tag_of(event)), (ot, oseq / TAG_SPAN));
            if t == burst_time {
                burst_tags.push(tag_of(event));
            }
        }
        // FIFO within the burst: tags come back sorted ascending.
        let mut sorted = burst_tags.clone();
        sorted.sort_unstable();
        prop_assert_eq!(burst_tags, sorted);
    }

    // Random interleavings of pushes and bounded pops (`pop_due` with an
    // advancing horizon) stay in lockstep with the oracle — including
    // pushes that land behind the wheel cursor after a horizon advance.
    #[test]
    fn interleaved_push_and_pop_due_match_oracle(
        ops in proptest::collection::vec((0u64..3, arb_time()), 1..300),
    ) {
        let mut queue = EventQueue::new();
        let mut oracle = HeapOracle::default();
        let mut horizon = 0u64;
        let mut tag = 0u64;
        for &(kind, t) in &ops {
            if kind == 0 {
                // Push, possibly behind the current pop horizon.
                queue.push(t, tagged(tag));
                oracle.push(t, tag);
                tag += 1;
            } else {
                // Advance the horizon and drain everything due.
                horizon = horizon.max(t);
                loop {
                    let got = queue.pop_due(horizon);
                    let want = oracle.pop_due(horizon);
                    match (got, want) {
                        (None, None) => break,
                        (Some((qt, event)), Some((ot, oseq))) => {
                            prop_assert_eq!((qt, tag_of(event)), (ot, oseq / TAG_SPAN));
                            prop_assert!(qt <= horizon);
                        }
                        (got, want) => {
                            panic!("pop_due({horizon}) diverged: wheel {got:?}, oracle {want:?}")
                        }
                    }
                }
            }
        }
        // Final full drain must also agree.
        loop {
            match (queue.pop(), oracle.pop()) {
                (None, None) => break,
                (Some((qt, event)), Some((ot, oseq))) => {
                    prop_assert_eq!((qt, tag_of(event)), (ot, oseq / TAG_SPAN));
                }
                (got, want) => {
                    panic!("final drain diverged: wheel {got:?}, oracle {want:?}")
                }
            }
        }
    }

    // Far-future events (beyond the 2^32 ms wheel horizon) park in the
    // overflow heap and cascade back into the wheel in order as the cursor
    // approaches them.
    #[test]
    fn overflow_events_cascade_in_order(
        near in proptest::collection::vec(0u64..1 << 16, 1..40),
        far in proptest::collection::vec((1u64 << 32)..(1 << 36), 1..40),
    ) {
        let mut queue = EventQueue::new();
        let mut oracle = HeapOracle::default();
        for (tag, &t) in near.iter().chain(far.iter()).enumerate() {
            queue.push(t, tagged(tag as u64));
            oracle.push(t, tag as u64);
        }
        let mut last = 0u64;
        while let Some((t, event)) = queue.pop() {
            let (ot, oseq) = oracle.pop().expect("oracle in sync");
            prop_assert_eq!((t, tag_of(event)), (ot, oseq / TAG_SPAN));
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert!(queue.is_empty());
    }
}

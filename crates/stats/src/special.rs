//! Special mathematical functions used by distribution CDFs and p-values.
//!
//! Implemented from standard published approximations so the workspace has no
//! external numerical dependencies. Accuracy targets (absolute error better
//! than 1e-7 for erf, 1e-9 for ln-gamma) are verified in the unit tests.

/// Error function `erf(x)`.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation refined with a
/// higher-order expansion (maximum absolute error below 1.5e-7), which is
/// ample for the CDF and p-value computations in this workspace.
pub fn erf(x: f64) -> f64 {
    // Numerical recipes style erfc via Chebyshev fitting gives ~1e-7.
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Chebyshev fit from Numerical Recipes (erfcc), max fractional error 1.2e-7.
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function.
pub fn standard_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Uses the Acklam rational approximation followed by one Halley refinement
/// step, giving roughly 1e-9 relative accuracy over `(0, 1)`.
///
/// Returns `f64::NEG_INFINITY` for `p <= 0` and `f64::INFINITY` for `p >= 1`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // Coefficients for the Acklam approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method to polish.
    let e = standard_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9), accurate to about 1e-13.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma function `Γ(x)` for `x > 0` (and via reflection for non-integer
/// negative arguments).
pub fn gamma(x: f64) -> f64 {
    if x > 171.0 {
        return f64::INFINITY;
    }
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        return pi / ((pi * x).sin() * gamma(1.0 - x));
    }
    ln_gamma(x).exp()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Returns values in `[0, 1]`; used for chi-square style p-values.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        1.0 - regularized_gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)` via
/// continued fraction (valid for `x >= a + 1`).
fn regularized_gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / 1e-300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 2e-7);
        assert!((erf(3.5) - 0.999_999_256_901_628).abs() < 2e-7);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.2, 0.0, 0.5, 2.7] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((standard_normal_cdf(1.96) - 0.975_002_104_85).abs() < 1e-5);
        for &x in &[-2.0, -0.3, 0.7, 1.5] {
            let s = standard_normal_cdf(x) + standard_normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = standard_normal_quantile(p);
            let back = standard_normal_cdf(x);
            assert!((back - p).abs() < 1e-7, "p={p} x={x} back={back}");
        }
        assert!(standard_normal_quantile(0.0).is_infinite());
        assert!(standard_normal_quantile(1.0).is_infinite());
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // ln Γ(n) = ln (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-9, "n={n}");
        }
        // Γ(1/2) = sqrt(pi)
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        // Γ(5.5) = 52.34277778455352
        assert!((gamma(5.5) - 52.342_777_784_553_52).abs() < 1e-8);
    }

    #[test]
    fn regularized_gamma_p_basic() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0] {
            let expected = 1.0 - (-x).exp();
            assert!(
                (regularized_gamma_p(1.0, x) - expected).abs() < 1e-9,
                "x={x}"
            );
        }
        assert_eq!(regularized_gamma_p(2.0, 0.0), 0.0);
        assert!(regularized_gamma_p(3.0, 100.0) > 0.999_999);
    }

    #[test]
    fn standard_normal_pdf_peak() {
        assert!((standard_normal_pdf(0.0) - 0.398_942_280_401_43).abs() < 1e-10);
        assert!(standard_normal_pdf(5.0) < 1e-5);
    }
}

//! Statistics substrate for the cold-start reproduction.
//!
//! This crate provides every piece of numerical machinery the higher layers
//! need, implemented from scratch so the whole workspace is self-contained:
//!
//! * deterministic random number generation ([`rng`]) with explicit seeding,
//! * special functions ([`special`]) used by distribution CDFs and p-values,
//! * parametric distributions with maximum-likelihood fitting
//!   ([`dist`]): LogNormal, Weibull, Exponential, Pareto, Uniform,
//! * empirical summaries: [`ecdf`], [`histogram`], [`summary`],
//! * dependence measures with significance ([`correlation`]),
//! * goodness-of-fit ([`ks`]),
//! * time-series utilities ([`timeseries`]): smoothing, peak detection,
//!   peak-to-trough ratios.
//!
//! The paper this workspace reproduces ("Serverless Cold Starts and Where to
//! Find Them", EuroSys '25) fits a LogNormal distribution to cold-start
//! durations and a Weibull distribution to cold-start inter-arrival times,
//! computes Spearman correlation matrices between cold-start components, and
//! detects daily workload peaks; all of those operations live here.
//!
//! # Examples
//!
//! ```
//! use faas_stats::dist::{ContinuousDistribution, LogNormal};
//! use faas_stats::rng::Xoshiro256pp;
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(7);
//! let dist = LogNormal::from_mean_std(3.24, 7.10).unwrap();
//! let samples: Vec<f64> = (0..10_000).map(|_| dist.sample(&mut rng)).collect();
//! let fitted = LogNormal::fit_mle(&samples).unwrap();
//! assert!((fitted.mean() - 3.24).abs() / 3.24 < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod dist;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod ks;
pub mod rng;
pub mod special;
pub mod summary;
pub mod timeseries;

pub use correlation::{pearson, spearman, CorrelationMatrix, CorrelationResult};
pub use dist::{ContinuousDistribution, Exponential, LogNormal, Pareto, Uniform, Weibull};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use histogram::{Histogram, LogHistogram};
pub use ks::ks_statistic;
pub use rng::Xoshiro256pp;
pub use summary::Summary;
pub use timeseries::{
    detect_peaks, moving_average, peak_to_trough_ratio, quantile, ForecastConfig, Forecaster,
    PeakDetector,
};

//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Online accumulator of count, mean, variance, min, max, and sum.
///
/// Uses Welford's numerically stable update; suitable for accumulating over
/// billions of simulated requests without drift.
///
/// # Examples
///
/// ```
/// use faas_stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in data {
            s.add(x);
        }
        s
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance; 0 when fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Coefficient of variation (std dev / mean); 0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn matches_naive_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_slice(&data);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = Summary::new();
        s.add(1.0);
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 3.0)
            .collect();
        let whole = Summary::from_slice(&data);
        let mut a = Summary::from_slice(&data[..400]);
        let b = Summary::from_slice(&data[400..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());

        let mut empty = Summary::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        let mut c = whole;
        c.merge(&Summary::new());
        assert_eq!(c.count(), whole.count());
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[1.0, 1.0, 1.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.coefficient_of_variation() - 0.4).abs() < 1e-12);
    }
}

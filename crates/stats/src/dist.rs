//! Parametric continuous distributions with maximum-likelihood fitting.
//!
//! The paper fits a LogNormal to cold-start durations and a Weibull to
//! cold-start inter-arrival times (Figure 10) and recommends both for
//! simulation use; this module provides those two families plus the
//! Exponential, Pareto, and Uniform distributions used in tests and
//! sensitivity checks. Every distribution exposes its CDF/PDF, moments,
//! inverse-CDF sampling from the workspace RNG, and (where standard
//! estimators exist) an MLE fit.

use crate::rng::Xoshiro256pp;
use crate::special::{gamma, standard_normal_cdf, standard_normal_pdf};
use crate::StatsError;

/// Shared interface of all continuous distributions in this module.
pub trait ContinuousDistribution {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Mean of the distribution (may be infinite, e.g. Pareto with shape
    /// at most one).
    fn mean(&self) -> f64;

    /// Standard deviation of the distribution (may be infinite).
    fn std_dev(&self) -> f64;

    /// Draws one value.
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64;

    /// Draws `n` values.
    fn sample_n(&self, rng: &mut Xoshiro256pp, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

fn require_positive(name: &'static str, value: f64) -> Result<(), StatsError> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(StatsError::InvalidParameter { name, value })
    }
}

fn require_all_positive(data: &[f64]) -> Result<(), StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    for (index, &value) in data.iter().enumerate() {
        if !(value > 0.0 && value.is_finite()) {
            return Err(StatsError::InvalidObservation { index, value });
        }
    }
    Ok(())
}

/// LogNormal distribution: `ln X ~ Normal(mu, sigma)`.
///
/// The paper's recommended model for cold-start durations.
///
/// # Examples
///
/// ```
/// use faas_stats::dist::{ContinuousDistribution, LogNormal};
/// use faas_stats::rng::Xoshiro256pp;
///
/// let d = LogNormal::from_mean_std(3.24, 7.10).unwrap();
/// assert!((d.mean() - 3.24).abs() < 1e-9);
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// assert!(d.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a LogNormal from its log-space location and scale.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        require_positive("sigma", sigma)?;
        Ok(Self { mu, sigma })
    }

    /// Creates the LogNormal whose real-space mean and standard deviation
    /// match the given values.
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        require_positive("mean", mean)?;
        require_positive("std_dev", std_dev)?;
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = cv2.ln_1p();
        Ok(Self {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        })
    }

    /// Maximum-likelihood fit: sample mean and standard deviation of `ln x`.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        require_all_positive(data)?;
        if data.len() < 2 {
            return Err(StatsError::NotEnoughData {
                required: 2,
                provided: data.len(),
            });
        }
        let n = data.len() as f64;
        let mu = data.iter().map(|x| x.ln()).sum::<f64>() / n;
        let var = data.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
        let sigma = var.sqrt();
        if sigma <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Log-space location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        standard_normal_pdf(z) / (x * self.sigma)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        standard_normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn std_dev(&self) -> f64 {
        self.mean() * (self.sigma * self.sigma).exp_m1().sqrt()
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// The paper's recommended model for cold-start inter-arrival times; shapes
/// below one capture their burstiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull from its shape and scale.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        require_positive("shape", shape)?;
        require_positive("scale", scale)?;
        Ok(Self { shape, scale })
    }

    /// Maximum-likelihood fit via Newton iteration on the profile likelihood
    /// of the shape, then the closed-form scale.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        require_all_positive(data)?;
        if data.len() < 2 {
            return Err(StatsError::NotEnoughData {
                required: 2,
                provided: data.len(),
            });
        }
        let n = data.len() as f64;
        let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / n;
        // Method-of-moments style start from the coefficient of variation of
        // ln x keeps the iteration in the basin for both k < 1 and k > 1.
        let var_ln = data.iter().map(|x| (x.ln() - mean_ln).powi(2)).sum::<f64>() / n;
        let mut k = if var_ln > 0.0 {
            (1.2 / var_ln.sqrt()).clamp(0.02, 50.0)
        } else {
            return Err(StatsError::InvalidParameter {
                name: "variance",
                value: var_ln,
            });
        };
        const MAX_ITERS: usize = 200;
        let mut converged = false;
        for _ in 0..MAX_ITERS {
            // f(k) = S1/S0 - 1/k - mean_ln, with S0 = sum x^k,
            // S1 = sum x^k ln x, S2 = sum x^k (ln x)^2.
            let (mut s0, mut s1, mut s2) = (0.0f64, 0.0f64, 0.0f64);
            for &x in data {
                let lx = x.ln();
                let w = (k * lx).exp();
                s0 += w;
                s1 += w * lx;
                s2 += w * lx * lx;
            }
            if !(s0.is_finite() && s1.is_finite() && s2.is_finite()) || s0 <= 0.0 {
                break;
            }
            let f = s1 / s0 - 1.0 / k - mean_ln;
            let fp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
            if fp <= 0.0 {
                break;
            }
            let step = f / fp;
            let next = (k - step).clamp(k / 3.0, k * 3.0);
            let delta = (next - k).abs();
            k = next.max(1e-6);
            if delta < 1e-10 * k.max(1.0) {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(StatsError::NoConvergence {
                routine: "weibull_fit_mle",
                iterations: MAX_ITERS,
            });
        }
        let mean_pow = data.iter().map(|x| (k * x.ln()).exp()).sum::<f64>() / n;
        let scale = mean_pow.powf(1.0 / k);
        Self::new(k, scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `lambda`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let t = x / self.scale;
        (self.shape / self.scale) * t.powf(self.shape - 1.0) * (-t.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        -(-(x / self.scale).powf(self.shape)).exp_m1()
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    fn std_dev(&self) -> f64 {
        let g1 = gamma(1.0 + 1.0 / self.shape);
        let g2 = gamma(1.0 + 2.0 / self.shape);
        (self.scale * self.scale * (g2 - g1 * g1)).max(0.0).sqrt()
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        let u = rng.next_open_f64();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an Exponential from its rate.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        require_positive("rate", rate)?;
        Ok(Self { rate })
    }

    /// Maximum-likelihood fit: the reciprocal of the sample mean.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        require_all_positive(data)?;
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        Self::new(1.0 / mean)
    }

    /// Rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn std_dev(&self) -> f64 {
        1.0 / self.rate
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        rng.exponential(self.rate)
    }
}

/// Pareto (type I) distribution with minimum `scale` and tail index `shape`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto from its minimum value and tail index.
    pub fn new(scale: f64, shape: f64) -> Result<Self, StatsError> {
        require_positive("scale", scale)?;
        require_positive("shape", shape)?;
        Ok(Self { scale, shape })
    }

    /// Maximum-likelihood fit: minimum observation and the Hill estimator.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        require_all_positive(data)?;
        if data.len() < 2 {
            return Err(StatsError::NotEnoughData {
                required: 2,
                provided: data.len(),
            });
        }
        let scale = data.iter().copied().fold(f64::INFINITY, f64::min);
        let log_sum: f64 = data.iter().map(|x| (x / scale).ln()).sum();
        if log_sum <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "log_sum",
                value: log_sum,
            });
        }
        Self::new(scale, data.len() as f64 / log_sum)
    }

    /// Minimum value parameter.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Tail index parameter.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl ContinuousDistribution for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            self.shape * self.scale.powf(self.shape) / x.powf(self.shape + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }

    fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }

    fn std_dev(&self) -> f64 {
        if self.shape <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.shape;
            (self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))).sqrt()
        }
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.scale * rng.next_open_f64().powf(-1.0 / self.shape)
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a Uniform on `[lo, hi)`; requires `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, StatsError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(StatsError::InvalidParameter {
                name: "hi - lo",
                value: hi - lo,
            });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x >= self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    fn std_dev(&self) -> f64 {
        (self.hi - self.lo) / 12f64.sqrt()
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        rng.uniform(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::from_mean_std(-1.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -2.0).is_err());
        assert!(Exponential::new(0.0).is_err());
        assert!(Pareto::new(1.0, f64::INFINITY).is_err());
        assert!(Uniform::new(2.0, 2.0).is_err());
    }

    #[test]
    fn fits_reject_bad_data() {
        assert_eq!(LogNormal::fit_mle(&[]), Err(StatsError::EmptyInput));
        assert!(LogNormal::fit_mle(&[1.0, -2.0]).is_err());
        assert!(LogNormal::fit_mle(&[3.0]).is_err());
        assert!(Weibull::fit_mle(&[1.0, f64::NAN]).is_err());
        assert!(Pareto::fit_mle(&[2.0]).is_err());
    }

    #[test]
    fn lognormal_from_mean_std_matches_moments() {
        let d = LogNormal::from_mean_std(3.24, 7.10).unwrap();
        assert!((d.mean() - 3.24).abs() < 1e-9);
        assert!((d.std_dev() - 7.10).abs() < 1e-9);
        assert!(d.sigma() > 0.0);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = LogNormal::new(0.7, 0.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(71);
        let xs = truth.sample_n(&mut rng, 50_000);
        let fit = LogNormal::fit_mle(&xs).unwrap();
        assert!((fit.mu() - 0.7).abs() < 0.02, "mu {}", fit.mu());
        assert!((fit.sigma() - 0.5).abs() < 0.02, "sigma {}", fit.sigma());
        let (sample_mean, _) = moments(&xs);
        assert!((fit.mean() - sample_mean).abs() / sample_mean < 0.02);
    }

    #[test]
    fn lognormal_cdf_is_monotone_and_bounded() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert!((d.cdf(1.0) - 0.5).abs() < 1e-7);
        let mut last = 0.0;
        for i in 1..200 {
            let c = d.cdf(i as f64 * 0.1);
            assert!(c >= last && c <= 1.0);
            last = c;
        }
        assert!(d.pdf(1.0) > 0.0);
        assert_eq!(d.pdf(-2.0), 0.0);
    }

    #[test]
    fn weibull_fit_recovers_parameters_above_and_below_one() {
        for &(k, lambda) in &[(0.6f64, 2.0f64), (1.7, 0.8)] {
            let truth = Weibull::new(k, lambda).unwrap();
            let mut rng = Xoshiro256pp::seed_from_u64(73);
            let xs = truth.sample_n(&mut rng, 50_000);
            let fit = Weibull::fit_mle(&xs).unwrap();
            assert!((fit.shape() - k).abs() / k < 0.05, "shape {}", fit.shape());
            assert!(
                (fit.scale() - lambda).abs() / lambda < 0.05,
                "scale {}",
                fit.scale()
            );
        }
    }

    #[test]
    fn weibull_moments_match_samples() {
        let d = Weibull::new(1.5, 3.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(79);
        let xs = d.sample_n(&mut rng, 100_000);
        let (mean, std) = moments(&xs);
        assert!((d.mean() - mean).abs() / mean < 0.02, "mean {mean}");
        assert!((d.std_dev() - std).abs() / std < 0.03, "std {std}");
        assert!((d.cdf(d.scale()) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn exponential_fit_and_moments() {
        let d = Exponential::new(2.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(83);
        let xs = d.sample_n(&mut rng, 50_000);
        let fit = Exponential::fit_mle(&xs).unwrap();
        assert!((fit.rate() - 2.5).abs() < 0.05, "rate {}", fit.rate());
        assert!((d.mean() - 0.4).abs() < 1e-12);
        assert!((d.cdf(d.mean()) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn pareto_fit_and_tail() {
        let d = Pareto::new(1.5, 2.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(89);
        let xs = d.sample_n(&mut rng, 50_000);
        assert!(xs.iter().all(|x| *x >= 1.5));
        let fit = Pareto::fit_mle(&xs).unwrap();
        assert!((fit.shape() - 2.5).abs() < 0.1, "shape {}", fit.shape());
        assert!((fit.scale() - 1.5).abs() < 0.01);
        assert!(d.mean().is_finite());
        assert!(Pareto::new(1.0, 0.5).unwrap().mean().is_infinite());
        assert!(Pareto::new(1.0, 1.5).unwrap().std_dev().is_infinite());
    }

    #[test]
    fn uniform_cdf_and_sampling_stay_in_range() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(97);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(7.0), 1.0);
        assert!((d.cdf(4.0) - 0.5).abs() < 1e-12);
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sample_n_is_deterministic_per_seed() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let a = d.sample_n(&mut Xoshiro256pp::seed_from_u64(5), 100);
        let b = d.sample_n(&mut Xoshiro256pp::seed_from_u64(5), 100);
        assert_eq!(a, b);
    }
}

//! Empirical cumulative distribution functions and quantiles.
//!
//! Every CDF figure in the paper (Figures 3, 4, 10, 15, 16, 17) is an ECDF
//! over some grouping of the trace; this module provides the shared
//! machinery: construction from raw samples, evaluation, quantiles, and
//! export of plot-ready `(x, F(x))` series on linear or logarithmic grids.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// An empirical cumulative distribution function built from a sample.
///
/// # Examples
///
/// ```
/// use faas_stats::Ecdf;
/// let ecdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
/// assert_eq!(ecdf.len(), 4);
/// assert!((ecdf.eval(2.0) - 0.75).abs() < 1e-12);
/// assert_eq!(ecdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, taking ownership and sorting it.
    ///
    /// Non-finite values are rejected.
    pub fn new(mut data: Vec<f64>) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        for (i, &x) in data.iter().enumerate() {
            if !x.is_finite() {
                return Err(StatsError::InvalidObservation { index: i, value: x });
            }
        }
        data.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Self { sorted: data })
    }

    /// Builds an ECDF from a slice by copying it.
    pub fn from_slice(data: &[f64]) -> Result<Self, StatsError> {
        Self::new(data.to_vec())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the ECDF has no observations (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.len() as f64
    }

    /// Evaluates `F(x) = P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.len() as f64
    }

    /// Empirical quantile using the inverse-CDF (type 1) definition.
    ///
    /// `p` is clamped to `[0, 1]`; `quantile(0.0)` is the minimum and
    /// `quantile(1.0)` the maximum.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return self.min();
        }
        let n = self.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Median, i.e. `quantile(0.5)`.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The quartiles `(q25, q50, q75)`, as drawn in the paper's violin plots
    /// (Figure 13).
    pub fn quartiles(&self) -> (f64, f64, f64) {
        (self.quantile(0.25), self.quantile(0.5), self.quantile(0.75))
    }

    /// Borrowed view of the sorted observations.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Plot-ready series of `(x, F(x))` at each distinct observation.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i;
            while j + 1 < self.sorted.len() && self.sorted[j + 1] == x {
                j += 1;
            }
            out.push((x, (j + 1) as f64 / n));
            i = j + 1;
        }
        out
    }

    /// Samples the ECDF on a logarithmically spaced grid of `points` values
    /// between `lo` and `hi`, as used for the paper's log-x CDF figures.
    ///
    /// Returns an empty vector when the bounds are invalid.
    pub fn log_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if !(lo > 0.0 && hi > lo && points >= 2) {
            return Vec::new();
        }
        let llo = lo.ln();
        let lhi = hi.ln();
        (0..points)
            .map(|i| {
                let x = (llo + (lhi - llo) * i as f64 / (points - 1) as f64).exp();
                (x, self.eval(x))
            })
            .collect()
    }

    /// Samples the ECDF on a linear grid of `points` values between `lo` and
    /// `hi` inclusive.
    pub fn linear_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if !(hi > lo && points >= 2) {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Fraction of observations strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v < x);
        count as f64 / self.len() as f64
    }
}

/// Computes a single empirical quantile of a slice without building an
/// [`Ecdf`]; convenient for one-off percentiles.
pub fn quantile_of(data: &[f64], p: f64) -> Result<f64, StatsError> {
    Ecdf::from_slice(data).map(|e| e.quantile(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn eval_matches_definition() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 0.25).abs() < 1e-12);
        assert!((e.eval(2.0) - 0.75).abs() < 1e-12);
        assert!((e.eval(4.9) - 0.75).abs() < 1e-12);
        assert_eq!(e.eval(5.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let e = Ecdf::new((1..=10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.1), 1.0);
        assert_eq!(e.quantile(0.5), 5.0);
        assert_eq!(e.quantile(1.0), 10.0);
        assert_eq!(e.median(), 5.0);
        let (q1, q2, q3) = e.quartiles();
        assert_eq!((q1, q2, q3), (3.0, 5.0, 8.0));
    }

    #[test]
    fn steps_deduplicate_and_end_at_one() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0, 3.0, 3.0, 3.0]).unwrap();
        let steps = e.steps();
        assert_eq!(steps.len(), 3);
        assert!((steps[0].1 - 2.0 / 6.0).abs() < 1e-12);
        assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grids_are_monotone() {
        let e = Ecdf::new((1..200).map(|i| i as f64).collect()).unwrap();
        let grid = e.log_grid(0.1, 1000.0, 50);
        assert_eq!(grid.len(), 50);
        for w in grid.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        let lin = e.linear_grid(0.0, 250.0, 26);
        assert_eq!(lin.len(), 26);
        assert_eq!(lin.last().unwrap().1, 1.0);
        assert!(e.log_grid(-1.0, 5.0, 10).is_empty());
        assert!(e.linear_grid(5.0, 5.0, 10).is_empty());
    }

    #[test]
    fn fraction_below_is_strict() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]).unwrap();
        assert!((e.fraction_below(2.0) - 0.25).abs() < 1e-12);
        assert!((e.eval(2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_stats() {
        let e = Ecdf::new(vec![4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert!((e.mean() - 2.5).abs() < 1e-12);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn quantile_of_helper() {
        assert_eq!(quantile_of(&[5.0, 1.0, 3.0], 0.5).unwrap(), 3.0);
        assert!(quantile_of(&[], 0.5).is_err());
    }
}

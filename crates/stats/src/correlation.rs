//! Pearson and Spearman correlation with significance testing.
//!
//! Figure 12 of the paper shows Spearman correlation matrices between the
//! per-minute means of cold-start time, its four components, and the number
//! of cold starts, with an asterisk marking correlations significant at
//! p < 0.05. [`CorrelationMatrix`] reproduces exactly that artifact.

use serde::{Deserialize, Serialize};

use crate::special::standard_normal_cdf;
use crate::StatsError;

/// A correlation coefficient together with its approximate p-value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationResult {
    /// The correlation coefficient in `[-1, 1]`.
    pub coefficient: f64,
    /// Two-sided p-value for the null hypothesis of zero correlation.
    pub p_value: f64,
    /// Number of paired observations used.
    pub n: usize,
}

impl CorrelationResult {
    /// Returns `true` if the correlation is significant at the given level
    /// (the paper uses 0.05 and marks such cells with an asterisk).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

fn validate_pair(x: &[f64], y: &[f64]) -> Result<(), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 3 {
        return Err(StatsError::NotEnoughData {
            required: 3,
            provided: x.len(),
        });
    }
    Ok(())
}

/// Two-sided p-value for a correlation `r` over `n` pairs using the normal
/// approximation of the t statistic (adequate for the hundreds to tens of
/// thousands of time bins we correlate).
fn correlation_p_value(r: f64, n: usize) -> f64 {
    if n < 4 {
        return 1.0;
    }
    let r = r.clamp(-0.999_999_999, 0.999_999_999);
    let t = r * ((n as f64 - 2.0) / (1.0 - r * r)).sqrt();
    // Treat t as approximately normal for the sample sizes we use.
    2.0 * (1.0 - standard_normal_cdf(t.abs()))
}

/// Pearson product-moment correlation.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<CorrelationResult, StatsError> {
    validate_pair(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let coefficient = if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
    };
    Ok(CorrelationResult {
        coefficient,
        p_value: correlation_p_value(coefficient, x.len()),
        n: x.len(),
    })
}

/// Assigns average ranks (1-based) to the data, resolving ties by averaging.
pub fn average_ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation (Pearson correlation of average ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<CorrelationResult, StatsError> {
    validate_pair(x, y)?;
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// A labelled symmetric matrix of pairwise Spearman correlations, mirroring
/// the panels of Figure 12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    /// Variable labels, in order.
    pub labels: Vec<String>,
    /// Row-major matrix of results; entry `[i][j]` correlates variable `i`
    /// with variable `j`.
    pub entries: Vec<Vec<CorrelationResult>>,
}

impl CorrelationMatrix {
    /// Computes the pairwise Spearman correlation matrix of the given
    /// variables (each a series of equal length).
    pub fn spearman(labels: &[&str], series: &[&[f64]]) -> Result<Self, StatsError> {
        if labels.len() != series.len() {
            return Err(StatsError::LengthMismatch {
                left: labels.len(),
                right: series.len(),
            });
        }
        if series.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = series[0].len();
        for s in series {
            if s.len() != n {
                return Err(StatsError::LengthMismatch {
                    left: n,
                    right: s.len(),
                });
            }
        }
        // Rank once per variable, then correlate ranks pairwise.
        let ranks: Vec<Vec<f64>> = series.iter().map(|s| average_ranks(s)).collect();
        let k = series.len();
        let mut entries = Vec::with_capacity(k);
        for i in 0..k {
            let mut row = Vec::with_capacity(k);
            for (j, rj) in ranks.iter().enumerate() {
                if i == j {
                    row.push(CorrelationResult {
                        coefficient: 1.0,
                        p_value: 0.0,
                        n,
                    });
                } else {
                    row.push(pearson(&ranks[i], rj)?);
                }
            }
            entries.push(row);
        }
        Ok(Self {
            labels: labels.iter().map(|s| s.to_string()).collect(),
            entries,
        })
    }

    /// Number of variables.
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// Looks up an entry by index.
    pub fn get(&self, i: usize, j: usize) -> Option<&CorrelationResult> {
        self.entries.get(i).and_then(|row| row.get(j))
    }

    /// Renders the matrix in the paper's style: one line per row, each cell
    /// formatted as `0.8*` where the asterisk marks `p < 0.05`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(0)
            .max(6);
        out.push_str(&format!("{:width$} ", "", width = width));
        for l in &self.labels {
            out.push_str(&format!("{l:>width$} ", width = width));
        }
        out.push('\n');
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(&format!("{l:width$} ", width = width));
            for j in 0..self.size() {
                let e = &self.entries[i][j];
                let star = if e.is_significant(0.05) { "*" } else { " " };
                out.push_str(&format!(
                    "{:>width$} ",
                    format!("{:.1}{}", e.coefficient, star),
                    width = width
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let r = pearson(&x, &y).unwrap();
        assert!((r.coefficient - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6);
        let y_neg: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        let r = pearson(&x, &y_neg).unwrap();
        assert!((r.coefficient + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        let x = vec![1.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&x, &y).unwrap().coefficient, 0.0);
    }

    #[test]
    fn pearson_independent_is_small() {
        // Deterministic pseudo-independent sequences.
        let x: Vec<f64> = (0..2000u64)
            .map(|i| ((i * 7919) % 104_729) as f64)
            .collect();
        let y: Vec<f64> = (0..2000u64)
            .map(|i| ((i * 15_485_863) % 32_452_843) as f64)
            .collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.coefficient.abs() < 0.08, "r = {}", r.coefficient);
    }

    #[test]
    fn validates_input() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(spearman(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn ranks_handle_ties() {
        let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
        let ranks = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(ranks, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform() {
        let x: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        let r = spearman(&x, &y).unwrap();
        assert!((r.coefficient - 1.0).abs() < 1e-12);
        let y_exp: Vec<f64> = x.iter().map(|v| (-v * 0.01).exp()).collect();
        let r = spearman(&x, &y_exp).unwrap();
        assert!((r.coefficient + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_bounded() {
        let x: Vec<f64> = (0..500).map(|i| ((i * 31) % 97) as f64).collect();
        let y: Vec<f64> = (0..500).map(|i| ((i * 17) % 89) as f64).collect();
        let r = spearman(&x, &y).unwrap();
        assert!(r.coefficient >= -1.0 && r.coefficient <= 1.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).cos()).collect();
        let c: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + 0.5 * y).collect();
        let m = CorrelationMatrix::spearman(&["a", "b", "c"], &[&a, &b, &c]).unwrap();
        assert_eq!(m.size(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i).unwrap().coefficient, 1.0);
            for j in 0..3 {
                let e_ij = m.get(i, j).unwrap().coefficient;
                let e_ji = m.get(j, i).unwrap().coefficient;
                assert!((e_ij - e_ji).abs() < 1e-12);
            }
        }
        assert!(m.get(0, 2).unwrap().coefficient > 0.5);
        let rendered = m.render();
        assert!(rendered.contains("1.0*"));
        assert!(rendered.lines().count() == 4);
    }

    #[test]
    fn matrix_validates_shapes() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0];
        assert!(CorrelationMatrix::spearman(&["a", "b"], &[&a, &b]).is_err());
        assert!(CorrelationMatrix::spearman(&["a"], &[&a, &a]).is_err());
        let empty: Vec<&[f64]> = vec![];
        assert!(CorrelationMatrix::spearman(&[], &empty).is_err());
    }
}

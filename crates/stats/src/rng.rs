//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (trace synthesis, simulator
//! latency sampling, policy jitter) draws from an explicitly seeded
//! [`Xoshiro256pp`] stream so that every experiment is exactly reproducible
//! from a single `u64` seed. Streams can be forked with [`Xoshiro256pp::fork`]
//! to give independent substreams to independent subsystems without
//! accidentally correlating them.

/// xoshiro256++ pseudo-random number generator.
///
/// A small, fast, high-quality non-cryptographic generator (Blackman &
/// Vigna). State is seeded through SplitMix64 so that even low-entropy seeds
/// (0, 1, 2, ...) produce well-mixed initial states.
///
/// # Examples
///
/// ```
/// use faas_stats::rng::Xoshiro256pp;
/// let mut a = Xoshiro256pp::seed_from_u64(42);
/// let mut b = Xoshiro256pp::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
    /// Cached second normal deviate from Box–Muller, if any.
    cached_normal: Option<f64>,
}

/// SplitMix64 step, used for seeding and stream forking.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Distinct seeds produce statistically independent streams for all
    /// practical purposes.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            cached_normal: None,
        }
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Forking with distinct labels from the same parent yields streams that
    /// do not overlap in practice; this is how per-region and per-function
    /// substreams are created.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Self::seed_from_u64(base)
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1)`.
    ///
    /// Useful as input to inverse-CDF samplers that are undefined at 0.
    #[inline]
    pub fn next_open_f64(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// If `hi <= lo` the value `lo` is returned.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Returns 0 when `n == 0`.
    #[inline]
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Lemire-style rejection-free bounded generation is overkill here;
        // the modulo bias for n << 2^64 is negligible for simulation use.
        (self.next_u64() % n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a standard normal deviate using the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        let u1 = self.next_open_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Returns an exponential deviate with the given rate `lambda`.
    ///
    /// Returns `f64::INFINITY` if `lambda <= 0`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return f64::INFINITY;
        }
        -self.next_open_f64().ln() / lambda
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not sum to one; negative weights are treated as zero.
    /// Returns `None` when all weights are zero or the slice is empty.
    pub fn categorical(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point rounding can let `target` leak past the last bucket.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Samples a Poisson-distributed count with the given mean.
    ///
    /// Uses Knuth's method for small means and a normal approximation for
    /// large ones (mean > 64), which is plenty for workload generation.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let v = self.normal(mean, mean.sqrt()).round();
            return if v < 0.0 { 0 } else { v as u64 };
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element reference, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_usize(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(123);
        let mut b = Xoshiro256pp::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = Xoshiro256pp::seed_from_u64(9);
        let mut parent2 = Xoshiro256pp::seed_from_u64(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent1.fork(6);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            let v = rng.uniform(3.0, 5.0);
            assert!((3.0..5.0).contains(&v));
        }
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
        assert_eq!(rng.uniform(5.0, 1.0), 5.0);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(rng.exponential(0.0).is_infinite());
    }

    #[test]
    fn bernoulli_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.categorical(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(rng.categorical(&[]), None);
        assert_eq!(rng.categorical(&[0.0, 0.0]), None);
        assert_eq!(rng.categorical(&[-1.0, 2.0]), Some(1));
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = Xoshiro256pp::seed_from_u64(29);
        let n = 50_000;
        let mean_small: f64 = (0..n).map(|_| rng.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean_small - 3.5).abs() < 0.1, "small {mean_small}");
        let mean_large: f64 = (0..n).map(|_| rng.poisson(200.0) as f64).sum::<f64>() / n as f64;
        assert!((mean_large - 200.0).abs() < 1.0, "large {mean_large}");
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(items, sorted);
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = Xoshiro256pp::seed_from_u64(37);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
    }
}

//! Kolmogorov–Smirnov goodness-of-fit.
//!
//! Used to quantify how close the LogNormal / Weibull fits of Figure 10 are
//! to the empirical cold-start and inter-arrival distributions ("these fits
//! are very close to the measured data from our system").

use crate::dist::ContinuousDistribution;
use crate::StatsError;

/// One-sample Kolmogorov–Smirnov statistic: the maximum absolute distance
/// between the ECDF of `data` and the CDF of `dist`.
pub fn ks_statistic<D: ContinuousDistribution>(data: &[f64], dist: &D) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut sorted = data.to_vec();
    for (i, &x) in sorted.iter().enumerate() {
        if !x.is_finite() {
            return Err(StatsError::InvalidObservation { index: i, value: x });
        }
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len() as f64;
    let mut d_max: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let ecdf_hi = (i as f64 + 1.0) / n;
        let ecdf_lo = i as f64 / n;
        d_max = d_max.max((f - ecdf_lo).abs()).max((ecdf_hi - f).abs());
    }
    Ok(d_max)
}

/// Approximate p-value for the KS statistic via the asymptotic Kolmogorov
/// distribution. Small p-values reject the fitted distribution.
pub fn ks_p_value(statistic: f64, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let en = (n as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * statistic;
    if lambda < 0.3 {
        // The asymptotic series oscillates for tiny arguments; the true
        // p-value is indistinguishable from 1 there.
        return 1.0;
    }
    // Two-sided asymptotic series.
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = sign * (-2.0 * (j as f64 * lambda).powi(2)).exp();
        sum += term;
        sign = -sign;
        if term.abs() < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Convenience wrapper returning both the statistic and its p-value.
pub fn ks_test<D: ContinuousDistribution>(
    data: &[f64],
    dist: &D,
) -> Result<(f64, f64), StatsError> {
    let d = ks_statistic(data, dist)?;
    Ok((d, ks_p_value(d, data.len())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Uniform, Weibull};
    use crate::rng::Xoshiro256pp;

    #[test]
    fn rejects_empty_and_nan() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        assert!(ks_statistic(&[], &u).is_err());
        assert!(ks_statistic(&[0.5, f64::NAN], &u).is_err());
    }

    #[test]
    fn small_statistic_for_matching_distribution() {
        let truth = LogNormal::new(0.2, 0.8).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(44);
        let xs = truth.sample_n(&mut rng, 20_000);
        let d = ks_statistic(&xs, &truth).unwrap();
        assert!(d < 0.015, "d = {d}");
        let (_, p) = ks_test(&xs, &truth).unwrap();
        assert!(p > 0.01, "p = {p}");
    }

    #[test]
    fn large_statistic_for_wrong_distribution() {
        let truth = LogNormal::new(0.2, 0.8).unwrap();
        let wrong = Weibull::new(3.0, 10.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(45);
        let xs = truth.sample_n(&mut rng, 5_000);
        let d_true = ks_statistic(&xs, &truth).unwrap();
        let d_wrong = ks_statistic(&xs, &wrong).unwrap();
        assert!(d_wrong > 5.0 * d_true, "true {d_true} wrong {d_wrong}");
        let (_, p) = ks_test(&xs, &wrong).unwrap();
        assert!(p < 1e-6);
    }

    #[test]
    fn statistic_is_bounded() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let d = ks_statistic(&[100.0, 200.0], &u).unwrap();
        assert!(d <= 1.0 && d > 0.9);
    }

    #[test]
    fn p_value_edge_cases() {
        assert_eq!(ks_p_value(0.5, 0), 1.0);
        assert!(ks_p_value(0.9, 1000) < 1e-9);
        assert!(ks_p_value(0.001, 100) > 0.99);
    }
}

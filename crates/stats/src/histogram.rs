//! Linear and logarithmic histograms.
//!
//! Log-spaced histograms back the latency distributions (cold-start times
//! span four orders of magnitude); linear histograms back time-binned counts.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Fixed-width linear histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !(lo.is_finite() && hi.is_finite() && hi > lo) {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bucket `i`; `None` if out of range.
    pub fn count(&self, i: usize) -> Option<u64> {
        self.counts.get(i).copied()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Midpoint of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// `(center, count)` pairs for every bucket.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// `(center, density)` pairs normalized so the densities integrate to 1
    /// over the in-range observations. Empty histogram yields zero densities.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let in_range: u64 = self.counts.iter().sum();
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let norm = if in_range == 0 {
            0.0
        } else {
            1.0 / (in_range as f64 * width)
        };
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.counts[i] as f64 * norm))
            .collect()
    }
}

/// Logarithmically bucketed histogram over `[lo, hi)` with `lo > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    log_lo: f64,
    log_hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` log-spaced buckets covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !(lo.is_finite() && lo > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "lo",
                value: lo,
            });
        }
        if !(hi.is_finite() && hi > lo) {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Self {
            log_lo: lo.ln(),
            log_hi: hi.ln(),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Adds one observation. Non-finite and non-positive values count as
    /// underflow (they cannot be placed on a log scale).
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x <= 0.0 || x.ln() < self.log_lo {
            self.underflow += 1;
        } else if x.ln() >= self.log_hi {
            self.overflow += 1;
        } else {
            let width = (self.log_hi - self.log_lo) / self.counts.len() as f64;
            let idx = (((x.ln() - self.log_lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bucket `i`; `None` if out of range.
    pub fn count(&self, i: usize) -> Option<u64> {
        self.counts.get(i).copied()
    }

    /// Total observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range (or non-positive).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Geometric midpoint of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        (self.log_lo + (i as f64 + 0.5) * width).exp()
    }

    /// `(geometric center, count)` pairs for every bucket.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// `(geometric center, cumulative fraction)` pairs, i.e. an approximate
    /// CDF on log-spaced support (used to compare against fitted CDFs).
    pub fn cumulative(&self) -> Vec<(f64, f64)> {
        let denom = self.total.max(1) as f64;
        let mut acc = self.underflow;
        (0..self.bins())
            .map(|i| {
                acc += self.counts[i];
                (self.bin_center(i), acc as f64 / denom)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        h.add(-1.0);
        h.add(10.0);
        h.add(f64::NAN);
        assert_eq!(h.bins(), 10);
        for i in 0..10 {
            assert_eq!(h.count(i), Some(1));
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 12);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert_eq!(h.count(10), None);
    }

    #[test]
    fn linear_density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 20).unwrap();
        for i in 0..1000 {
            h.add((i as f64 + 0.5) / 1000.0);
        }
        let width = 0.05;
        let area: f64 = h.density().iter().map(|(_, d)| d * width).sum();
        assert!((area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(Histogram::new(1.0, 1.0, 5).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(LogHistogram::new(0.0, 1.0, 5).is_err());
        assert!(LogHistogram::new(1.0, 0.5, 5).is_err());
        assert!(LogHistogram::new(1.0, 2.0, 0).is_err());
    }

    #[test]
    fn log_bucketing_spans_decades() {
        let mut h = LogHistogram::new(0.001, 1000.0, 6).unwrap();
        // One observation per decade-ish bucket center.
        for &x in &[0.003, 0.03, 0.3, 3.0, 30.0, 300.0] {
            h.add(x);
        }
        for i in 0..6 {
            assert_eq!(h.count(i), Some(1), "bucket {i}");
        }
        h.add(0.0);
        h.add(-5.0);
        h.add(5000.0);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 9);
    }

    #[test]
    fn log_cumulative_monotone_to_one() {
        let mut h = LogHistogram::new(0.01, 100.0, 40).unwrap();
        for i in 1..=500 {
            h.add(i as f64 * 0.1);
        }
        let cum = h.cumulative();
        for w in cum.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cum.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}

//! Time-series utilities: smoothing, peak detection, peak-to-trough ratios.
//!
//! Section 3.2 of the paper detects the largest daily peak of each region on
//! a smoothed request series (Figure 5) and characterizes functions by their
//! peak-to-trough ratio (Figure 6). This module provides those operations on
//! plain `&[f64]` series (one value per time bin).

use serde::{Deserialize, Serialize};

/// Centred moving average with the given half-window.
///
/// `half_window = 0` returns the input unchanged. Edges use the available
/// (shorter) window, so the output has the same length as the input.
pub fn moving_average(series: &[f64], half_window: usize) -> Vec<f64> {
    if half_window == 0 || series.len() <= 1 {
        return series.to_vec();
    }
    let n = series.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        let window = &series[lo..hi];
        out.push(window.iter().sum::<f64>() / window.len() as f64);
    }
    out
}

/// A detected local maximum in a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Index of the peak in the (smoothed) series.
    pub index: usize,
    /// Value of the smoothed series at the peak.
    pub value: f64,
}

/// Configuration for peak detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakDetector {
    /// Half-window of the moving average applied before detection.
    pub smoothing_half_window: usize,
    /// Minimum number of bins between two reported peaks.
    pub min_separation: usize,
    /// Minimum peak value as a fraction of the global maximum (0 disables).
    pub min_relative_height: f64,
}

impl Default for PeakDetector {
    fn default() -> Self {
        Self {
            smoothing_half_window: 15,
            min_separation: 60,
            min_relative_height: 0.2,
        }
    }
}

impl PeakDetector {
    /// Detects local maxima after smoothing, honouring the separation and
    /// height constraints. Peaks are returned sorted by index.
    pub fn detect(&self, series: &[f64]) -> Vec<Peak> {
        detect_peaks_with(series, self)
    }

    /// Returns the single largest peak inside each consecutive window of
    /// `period` bins (e.g. `period = 1440` for daily peaks on minute bins),
    /// mirroring the red "largest peak in 24 hours" markers of Figure 5.
    pub fn largest_peak_per_period(&self, series: &[f64], period: usize) -> Vec<Peak> {
        if period == 0 || series.is_empty() {
            return Vec::new();
        }
        let smoothed = moving_average(series, self.smoothing_half_window);
        let mut out = Vec::new();
        let mut start = 0;
        while start < smoothed.len() {
            let end = (start + period).min(smoothed.len());
            if let Some((idx, &val)) = smoothed[start..end]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            {
                out.push(Peak {
                    index: start + idx,
                    value: val,
                });
            }
            start = end;
        }
        out
    }
}

/// Detects peaks with the default detector settings.
pub fn detect_peaks(series: &[f64]) -> Vec<Peak> {
    detect_peaks_with(series, &PeakDetector::default())
}

fn detect_peaks_with(series: &[f64], cfg: &PeakDetector) -> Vec<Peak> {
    if series.len() < 3 {
        return Vec::new();
    }
    let smoothed = moving_average(series, cfg.smoothing_half_window);
    let global_max = smoothed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !global_max.is_finite() || global_max <= 0.0 {
        return Vec::new();
    }
    let threshold = global_max * cfg.min_relative_height;
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 1..smoothed.len() - 1 {
        if smoothed[i] >= smoothed[i - 1]
            && smoothed[i] > smoothed[i + 1]
            && smoothed[i] >= threshold
        {
            candidates.push(Peak {
                index: i,
                value: smoothed[i],
            });
        }
    }
    // Enforce minimum separation, keeping the taller of two close peaks.
    candidates.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<Peak> = Vec::new();
    for c in candidates {
        if kept
            .iter()
            .all(|k| k.index.abs_diff(c.index) >= cfg.min_separation)
        {
            kept.push(c);
        }
    }
    kept.sort_by_key(|p| p.index);
    kept
}

/// Peak-to-trough ratio of a series, following the paper's definition: the
/// ratio of the largest peak of the (smoothed) periodic pattern to its lowest
/// trough.
///
/// To avoid division by zero for series that touch zero (e.g. functions with
/// no requests at night), the trough is floored at `floor`. Series with no
/// identifiable variation return 1.0, matching the paper's convention that
/// "functions with a constant value of requests per minute, or no
/// identifiable peaks have a peak-to-trough ratio of one".
pub fn peak_to_trough_ratio(series: &[f64], smoothing_half_window: usize, floor: f64) -> f64 {
    if series.is_empty() {
        return 1.0;
    }
    let smoothed = moving_average(series, smoothing_half_window);
    let max = smoothed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = smoothed.iter().cloned().fold(f64::INFINITY, f64::min);
    if !max.is_finite() || !min.is_finite() || max <= 0.0 {
        return 1.0;
    }
    let trough = min.max(floor.max(f64::MIN_POSITIVE));
    let ratio = max / trough;
    if ratio < 1.0 {
        1.0
    } else {
        ratio
    }
}

/// Normalizes a series by its maximum (series of zeros stays zero).
pub fn normalize_by_max(series: &[f64]) -> Vec<f64> {
    let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() || max <= 0.0 {
        return vec![0.0; series.len()];
    }
    series.iter().map(|v| v / max).collect()
}

/// Sums a series into coarser bins of `factor` consecutive elements
/// (the last bin may be partial). Used to roll minute bins up to hours.
pub fn rebin_sum(series: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return series.to_vec();
    }
    series.chunks(factor).map(|c| c.iter().sum()).collect()
}

/// Averages a series into coarser bins of `factor` consecutive elements.
pub fn rebin_mean(series: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return series.to_vec();
    }
    series
        .chunks(factor)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Exact quantile of a series by partial selection (`select_nth_unstable`),
/// without sorting the whole input: the `q`-quantile is the order statistic
/// at index `ceil(q * n) - 1` (clamped into range), matching the convention
/// of the platform's inter-arrival percentile cache. Returns `None` for an
/// empty series or a non-finite `q`. NaN values are ordered last.
pub fn quantile(series: &[f64], q: f64) -> Option<f64> {
    if series.is_empty() || !q.is_finite() {
        return None;
    }
    let n = series.len();
    let idx = if q <= 0.0 {
        0
    } else {
        (((n as f64) * q.min(1.0)).ceil() as usize).saturating_sub(1)
    }
    .min(n - 1);
    let mut scratch = series.to_vec();
    let (_, nth, _) = scratch.select_nth_unstable_by(idx, |a, b| {
        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
    });
    Some(*nth)
}

/// Configuration of the online [`Forecaster`]: Holt's linear (level + trend)
/// exponential smoothing with an optional additive seasonal component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastConfig {
    /// Level smoothing factor in `(0, 1]`.
    pub alpha: f64,
    /// Trend smoothing factor in `[0, 1]`.
    pub beta: f64,
    /// Seasonal smoothing factor in `[0, 1]` (ignored when
    /// `season_len == 0`).
    pub gamma: f64,
    /// Number of buckets in one season (0 disables the seasonal component;
    /// e.g. bins-per-day for diurnal recovery).
    pub season_len: usize,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self {
            alpha: 0.4,
            beta: 0.1,
            gamma: 0.3,
            season_len: 0,
        }
    }
}

/// Online trend + seasonality forecaster over a bucketed rate series.
///
/// Additive Holt–Winters: the smoothed `level` follows the deseasonalised
/// observations, `trend` follows the level's drift, and `season` holds one
/// additive offset per bucket of the configured season. When a season is
/// configured, the first full period is buffered and used as the classical
/// initialisation — `level` starts at the period mean and each seasonal
/// offset at its bucket's deviation from that mean. Zero-initialised
/// seasonals would instead let the level chase a slowly-varying signal and
/// leave the offsets near zero, flattening the forecast (visible at high
/// bins-per-day in the diurnal-recovery property). Every update — including
/// the first-season mean — is a fixed linear combination of the
/// observations, so the whole state — and therefore every forecast — scales
/// linearly with the input: feeding `c · xᵢ` yields `c ·` the original
/// forecast for any `c ≥ 0`. The property suite pins this (scaled-input
/// monotonicity) together with diurnal recovery.
///
/// Forecasts are floored at zero: arrival rates cannot be negative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Forecaster {
    config: ForecastConfig,
    level: f64,
    trend: f64,
    season: Vec<f64>,
    /// First-season buffer; drained into `level`/`season` once full.
    warmup: Vec<f64>,
    observations: u64,
}

impl Forecaster {
    /// A fresh forecaster with no observations.
    pub fn new(config: ForecastConfig) -> Self {
        let season = vec![0.0; config.season_len];
        Self {
            config,
            level: 0.0,
            trend: 0.0,
            season,
            warmup: Vec::new(),
            observations: 0,
        }
    }

    /// Fits a forecaster over a whole series, observing in order.
    pub fn fit(config: ForecastConfig, series: &[f64]) -> Self {
        let mut f = Self::new(config);
        for &v in series {
            f.observe(v);
        }
        f
    }

    /// Number of observations consumed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Feeds the next bucket's observed value (one fixed time step).
    pub fn observe(&mut self, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        if !self.season.is_empty() && (self.observations as usize) < self.season.len() {
            // Classical initialisation: buffer the first full season, then
            // seed the level with the period mean and each seasonal offset
            // with its bucket's deviation from it.
            self.warmup.push(value);
            if self.warmup.len() == self.season.len() {
                let mean = self.warmup.iter().sum::<f64>() / self.warmup.len() as f64;
                self.level = mean;
                for (slot, &v) in self.season.iter_mut().zip(&self.warmup) {
                    *slot = v - mean;
                }
                self.warmup = Vec::new();
            }
            self.observations += 1;
            return;
        }
        if self.observations == 0 {
            // Seed the level directly so the first forecasts track the
            // observed magnitude instead of decaying up from zero.
            self.level = value;
        } else {
            let seasonal = self.seasonal_at(self.observations);
            let deseasoned = value - seasonal;
            let prev_level = self.level;
            self.level = self.config.alpha * deseasoned
                + (1.0 - self.config.alpha) * (prev_level + self.trend);
            self.trend = self.config.beta * (self.level - prev_level)
                + (1.0 - self.config.beta) * self.trend;
            if !self.season.is_empty() {
                let idx = (self.observations as usize) % self.season.len();
                self.season[idx] = self.config.gamma * (value - self.level)
                    + (1.0 - self.config.gamma) * self.season[idx];
            }
        }
        self.observations += 1;
    }

    fn seasonal_at(&self, step: u64) -> f64 {
        if self.season.is_empty() {
            0.0
        } else {
            self.season[(step as usize) % self.season.len()]
        }
    }

    /// Predicted value `steps_ahead` buckets after the last observation
    /// (`steps_ahead = 1` is the next bucket), floored at zero.
    pub fn forecast(&self, steps_ahead: u64) -> f64 {
        if self.observations == 0 {
            return 0.0;
        }
        if !self.warmup.is_empty() {
            // Still inside the first season: predict the running mean of the
            // buffered observations (linear in the input, like the rest of
            // the state).
            let mean = self.warmup.iter().sum::<f64>() / self.warmup.len() as f64;
            return mean.max(0.0);
        }
        let h = steps_ahead.max(1);
        let linear = self.level + (h as f64) * self.trend;
        let seasonal = self.seasonal_at(self.observations + h - 1);
        (linear + seasonal).max(0.0)
    }

    /// The largest forecast over the next `horizon` buckets — the peak the
    /// model expects inside the horizon (0 for an empty horizon).
    pub fn forecast_peak(&self, horizon: u64) -> f64 {
        (1..=horizon).map(|h| self.forecast(h)).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_series(days: usize, bins_per_day: usize, phase: f64) -> Vec<f64> {
        (0..days * bins_per_day)
            .map(|i| {
                let t = i as f64 / bins_per_day as f64 * std::f64::consts::TAU;
                100.0 + 80.0 * (t - phase).sin()
            })
            .collect()
    }

    #[test]
    fn moving_average_preserves_length_and_smooths() {
        let noisy: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 10.0 } else { 0.0 })
            .collect();
        let smooth = moving_average(&noisy, 5);
        assert_eq!(smooth.len(), noisy.len());
        let var_raw: f64 = noisy.iter().map(|v| (v - 5.0).powi(2)).sum();
        let var_smooth: f64 = smooth.iter().map(|v| (v - 5.0).powi(2)).sum();
        assert!(var_smooth < var_raw / 4.0);
        assert_eq!(moving_average(&noisy, 0), noisy);
        assert_eq!(moving_average(&[1.0], 3), vec![1.0]);
    }

    #[test]
    fn detects_daily_peaks() {
        let series = diurnal_series(3, 1440, 0.0);
        let detector = PeakDetector {
            smoothing_half_window: 10,
            min_separation: 600,
            min_relative_height: 0.5,
        };
        let peaks = detector.detect(&series);
        assert_eq!(peaks.len(), 3, "one peak per day, got {peaks:?}");
        // Peaks are roughly a day apart.
        for w in peaks.windows(2) {
            let gap = w[1].index - w[0].index;
            assert!((gap as i64 - 1440).abs() < 60, "gap {gap}");
        }
    }

    #[test]
    fn largest_peak_per_period_finds_daily_max() {
        let series = diurnal_series(4, 1440, 1.0);
        let detector = PeakDetector::default();
        let daily = detector.largest_peak_per_period(&series, 1440);
        assert_eq!(daily.len(), 4);
        for p in &daily {
            assert!(p.value > 170.0, "peak value {}", p.value);
        }
        assert!(detector.largest_peak_per_period(&series, 0).is_empty());
    }

    #[test]
    fn peak_detection_edge_cases() {
        assert!(detect_peaks(&[]).is_empty());
        assert!(detect_peaks(&[1.0, 2.0]).is_empty());
        assert!(detect_peaks(&[0.0; 100]).is_empty());
    }

    #[test]
    fn peak_to_trough_basic() {
        let series = diurnal_series(2, 1440, 0.0);
        let ratio = peak_to_trough_ratio(&series, 10, 1.0);
        assert!((ratio - 9.0).abs() < 1.0, "ratio {ratio}");
        // Constant series => ratio 1.
        assert_eq!(
            peak_to_trough_ratio(&[5.0; 100], 5, 1.0),
            5.0f64.max(1.0) / 5.0
        );
        assert_eq!(peak_to_trough_ratio(&[], 5, 1.0), 1.0);
        assert_eq!(peak_to_trough_ratio(&[0.0; 50], 5, 1.0), 1.0);
    }

    #[test]
    fn peak_to_trough_floors_trough() {
        let mut series = vec![0.0; 100];
        series[50] = 1000.0;
        let ratio = peak_to_trough_ratio(&series, 0, 1.0);
        assert!((ratio - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_matches_order_statistics() {
        let series = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile(&series, 0.0), Some(1.0));
        assert_eq!(quantile(&series, 0.5), Some(3.0));
        assert_eq!(quantile(&series, 1.0), Some(5.0));
        assert_eq!(quantile(&series, 0.9), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.25), Some(7.0));
        assert_eq!(quantile(&series, f64::NAN), None);
    }

    #[test]
    fn forecaster_tracks_level_and_trend() {
        // A pure linear ramp: Holt smoothing converges on the slope, so the
        // h-step forecast extrapolates ahead of the last observation.
        let series: Vec<f64> = (0..200).map(|i| 10.0 + 2.0 * i as f64).collect();
        let f = Forecaster::fit(ForecastConfig::default(), &series);
        let last = *series.last().unwrap();
        let one = f.forecast(1);
        assert!(one > last, "forecast {one} should extend the ramp {last}");
        assert!(f.forecast(10) > one, "longer horizons extrapolate further");
        assert!((one - (last + 2.0)).abs() < 2.0, "one-step forecast {one}");
        assert_eq!(f.observations(), 200);
        // A fresh forecaster predicts nothing.
        assert_eq!(Forecaster::new(ForecastConfig::default()).forecast(1), 0.0);
    }

    #[test]
    fn forecaster_recovers_diurnal_seasonality() {
        let bins = 48;
        let series = diurnal_series(6, bins, 0.0);
        let cfg = ForecastConfig {
            season_len: bins,
            ..ForecastConfig::default()
        };
        let f = Forecaster::fit(cfg, &series);
        // Forecast one full day ahead and compare phases: the predicted peak
        // bucket must clearly exceed the predicted trough bucket.
        let day_ahead: Vec<f64> = (1..=bins as u64).map(|h| f.forecast(h)).collect();
        let max = day_ahead.iter().cloned().fold(f64::MIN, f64::max);
        let min = day_ahead.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > min + 80.0,
            "seasonal swing not recovered: max {max}, min {min}"
        );
        // The peak forecast over the horizon is the maximum of the steps.
        assert_eq!(f.forecast_peak(bins as u64), max);
        assert_eq!(f.forecast_peak(0), 0.0);
    }

    #[test]
    fn forecaster_scales_linearly_with_input() {
        let series = diurnal_series(3, 24, 0.5);
        let scaled: Vec<f64> = series.iter().map(|v| v * 3.0).collect();
        let cfg = ForecastConfig {
            season_len: 24,
            ..ForecastConfig::default()
        };
        let base = Forecaster::fit(cfg, &series);
        let tripled = Forecaster::fit(cfg, &scaled);
        for h in 1..=30 {
            let expected = 3.0 * base.forecast(h);
            let got = tripled.forecast(h);
            assert!(
                (got - expected).abs() < 1e-6 * expected.abs().max(1.0),
                "h={h}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn normalize_and_rebin() {
        let series = vec![1.0, 2.0, 4.0, 8.0];
        let norm = normalize_by_max(&series);
        assert_eq!(norm, vec![0.125, 0.25, 0.5, 1.0]);
        assert_eq!(normalize_by_max(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(rebin_sum(&series, 2), vec![3.0, 12.0]);
        assert_eq!(rebin_mean(&series, 2), vec![1.5, 6.0]);
        assert_eq!(rebin_sum(&series, 3), vec![7.0, 8.0]);
        assert_eq!(rebin_sum(&series, 1), series);
    }
}

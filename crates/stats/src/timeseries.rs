//! Time-series utilities: smoothing, peak detection, peak-to-trough ratios.
//!
//! Section 3.2 of the paper detects the largest daily peak of each region on
//! a smoothed request series (Figure 5) and characterizes functions by their
//! peak-to-trough ratio (Figure 6). This module provides those operations on
//! plain `&[f64]` series (one value per time bin).

use serde::{Deserialize, Serialize};

/// Centred moving average with the given half-window.
///
/// `half_window = 0` returns the input unchanged. Edges use the available
/// (shorter) window, so the output has the same length as the input.
pub fn moving_average(series: &[f64], half_window: usize) -> Vec<f64> {
    if half_window == 0 || series.len() <= 1 {
        return series.to_vec();
    }
    let n = series.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        let window = &series[lo..hi];
        out.push(window.iter().sum::<f64>() / window.len() as f64);
    }
    out
}

/// A detected local maximum in a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Index of the peak in the (smoothed) series.
    pub index: usize,
    /// Value of the smoothed series at the peak.
    pub value: f64,
}

/// Configuration for peak detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakDetector {
    /// Half-window of the moving average applied before detection.
    pub smoothing_half_window: usize,
    /// Minimum number of bins between two reported peaks.
    pub min_separation: usize,
    /// Minimum peak value as a fraction of the global maximum (0 disables).
    pub min_relative_height: f64,
}

impl Default for PeakDetector {
    fn default() -> Self {
        Self {
            smoothing_half_window: 15,
            min_separation: 60,
            min_relative_height: 0.2,
        }
    }
}

impl PeakDetector {
    /// Detects local maxima after smoothing, honouring the separation and
    /// height constraints. Peaks are returned sorted by index.
    pub fn detect(&self, series: &[f64]) -> Vec<Peak> {
        detect_peaks_with(series, self)
    }

    /// Returns the single largest peak inside each consecutive window of
    /// `period` bins (e.g. `period = 1440` for daily peaks on minute bins),
    /// mirroring the red "largest peak in 24 hours" markers of Figure 5.
    pub fn largest_peak_per_period(&self, series: &[f64], period: usize) -> Vec<Peak> {
        if period == 0 || series.is_empty() {
            return Vec::new();
        }
        let smoothed = moving_average(series, self.smoothing_half_window);
        let mut out = Vec::new();
        let mut start = 0;
        while start < smoothed.len() {
            let end = (start + period).min(smoothed.len());
            if let Some((idx, &val)) = smoothed[start..end]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            {
                out.push(Peak {
                    index: start + idx,
                    value: val,
                });
            }
            start = end;
        }
        out
    }
}

/// Detects peaks with the default detector settings.
pub fn detect_peaks(series: &[f64]) -> Vec<Peak> {
    detect_peaks_with(series, &PeakDetector::default())
}

fn detect_peaks_with(series: &[f64], cfg: &PeakDetector) -> Vec<Peak> {
    if series.len() < 3 {
        return Vec::new();
    }
    let smoothed = moving_average(series, cfg.smoothing_half_window);
    let global_max = smoothed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !global_max.is_finite() || global_max <= 0.0 {
        return Vec::new();
    }
    let threshold = global_max * cfg.min_relative_height;
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 1..smoothed.len() - 1 {
        if smoothed[i] >= smoothed[i - 1]
            && smoothed[i] > smoothed[i + 1]
            && smoothed[i] >= threshold
        {
            candidates.push(Peak {
                index: i,
                value: smoothed[i],
            });
        }
    }
    // Enforce minimum separation, keeping the taller of two close peaks.
    candidates.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<Peak> = Vec::new();
    for c in candidates {
        if kept
            .iter()
            .all(|k| k.index.abs_diff(c.index) >= cfg.min_separation)
        {
            kept.push(c);
        }
    }
    kept.sort_by_key(|p| p.index);
    kept
}

/// Peak-to-trough ratio of a series, following the paper's definition: the
/// ratio of the largest peak of the (smoothed) periodic pattern to its lowest
/// trough.
///
/// To avoid division by zero for series that touch zero (e.g. functions with
/// no requests at night), the trough is floored at `floor`. Series with no
/// identifiable variation return 1.0, matching the paper's convention that
/// "functions with a constant value of requests per minute, or no
/// identifiable peaks have a peak-to-trough ratio of one".
pub fn peak_to_trough_ratio(series: &[f64], smoothing_half_window: usize, floor: f64) -> f64 {
    if series.is_empty() {
        return 1.0;
    }
    let smoothed = moving_average(series, smoothing_half_window);
    let max = smoothed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = smoothed.iter().cloned().fold(f64::INFINITY, f64::min);
    if !max.is_finite() || !min.is_finite() || max <= 0.0 {
        return 1.0;
    }
    let trough = min.max(floor.max(f64::MIN_POSITIVE));
    let ratio = max / trough;
    if ratio < 1.0 {
        1.0
    } else {
        ratio
    }
}

/// Normalizes a series by its maximum (series of zeros stays zero).
pub fn normalize_by_max(series: &[f64]) -> Vec<f64> {
    let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() || max <= 0.0 {
        return vec![0.0; series.len()];
    }
    series.iter().map(|v| v / max).collect()
}

/// Sums a series into coarser bins of `factor` consecutive elements
/// (the last bin may be partial). Used to roll minute bins up to hours.
pub fn rebin_sum(series: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return series.to_vec();
    }
    series.chunks(factor).map(|c| c.iter().sum()).collect()
}

/// Averages a series into coarser bins of `factor` consecutive elements.
pub fn rebin_mean(series: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return series.to_vec();
    }
    series
        .chunks(factor)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_series(days: usize, bins_per_day: usize, phase: f64) -> Vec<f64> {
        (0..days * bins_per_day)
            .map(|i| {
                let t = i as f64 / bins_per_day as f64 * std::f64::consts::TAU;
                100.0 + 80.0 * (t - phase).sin()
            })
            .collect()
    }

    #[test]
    fn moving_average_preserves_length_and_smooths() {
        let noisy: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 10.0 } else { 0.0 })
            .collect();
        let smooth = moving_average(&noisy, 5);
        assert_eq!(smooth.len(), noisy.len());
        let var_raw: f64 = noisy.iter().map(|v| (v - 5.0).powi(2)).sum();
        let var_smooth: f64 = smooth.iter().map(|v| (v - 5.0).powi(2)).sum();
        assert!(var_smooth < var_raw / 4.0);
        assert_eq!(moving_average(&noisy, 0), noisy);
        assert_eq!(moving_average(&[1.0], 3), vec![1.0]);
    }

    #[test]
    fn detects_daily_peaks() {
        let series = diurnal_series(3, 1440, 0.0);
        let detector = PeakDetector {
            smoothing_half_window: 10,
            min_separation: 600,
            min_relative_height: 0.5,
        };
        let peaks = detector.detect(&series);
        assert_eq!(peaks.len(), 3, "one peak per day, got {peaks:?}");
        // Peaks are roughly a day apart.
        for w in peaks.windows(2) {
            let gap = w[1].index - w[0].index;
            assert!((gap as i64 - 1440).abs() < 60, "gap {gap}");
        }
    }

    #[test]
    fn largest_peak_per_period_finds_daily_max() {
        let series = diurnal_series(4, 1440, 1.0);
        let detector = PeakDetector::default();
        let daily = detector.largest_peak_per_period(&series, 1440);
        assert_eq!(daily.len(), 4);
        for p in &daily {
            assert!(p.value > 170.0, "peak value {}", p.value);
        }
        assert!(detector.largest_peak_per_period(&series, 0).is_empty());
    }

    #[test]
    fn peak_detection_edge_cases() {
        assert!(detect_peaks(&[]).is_empty());
        assert!(detect_peaks(&[1.0, 2.0]).is_empty());
        assert!(detect_peaks(&[0.0; 100]).is_empty());
    }

    #[test]
    fn peak_to_trough_basic() {
        let series = diurnal_series(2, 1440, 0.0);
        let ratio = peak_to_trough_ratio(&series, 10, 1.0);
        assert!((ratio - 9.0).abs() < 1.0, "ratio {ratio}");
        // Constant series => ratio 1.
        assert_eq!(
            peak_to_trough_ratio(&[5.0; 100], 5, 1.0),
            5.0f64.max(1.0) / 5.0
        );
        assert_eq!(peak_to_trough_ratio(&[], 5, 1.0), 1.0);
        assert_eq!(peak_to_trough_ratio(&[0.0; 50], 5, 1.0), 1.0);
    }

    #[test]
    fn peak_to_trough_floors_trough() {
        let mut series = vec![0.0; 100];
        series[50] = 1000.0;
        let ratio = peak_to_trough_ratio(&series, 0, 1.0);
        assert!((ratio - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_and_rebin() {
        let series = vec![1.0, 2.0, 4.0, 8.0];
        let norm = normalize_by_max(&series);
        assert_eq!(norm, vec![0.125, 0.25, 0.5, 1.0]);
        assert_eq!(normalize_by_max(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(rebin_sum(&series, 2), vec![3.0, 12.0]);
        assert_eq!(rebin_mean(&series, 2), vec![1.5, 6.0]);
        assert_eq!(rebin_sum(&series, 3), vec![7.0, 8.0]);
        assert_eq!(rebin_sum(&series, 1), series);
    }
}

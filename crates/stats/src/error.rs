//! Error type shared by all statistics routines.

use std::fmt;

/// Errors returned by fitting and estimation routines.
///
/// All fallible statistics operations return [`Result<T, StatsError>`]; the
/// crate never panics on bad user input (it may panic on internal logic
/// errors, which are bugs).
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slice was empty but at least one observation is required.
    EmptyInput,
    /// The input contained too few observations for the requested operation.
    ///
    /// Carries the number required and the number provided.
    NotEnoughData {
        /// Minimum number of observations required.
        required: usize,
        /// Number of observations actually provided.
        provided: usize,
    },
    /// An observation was outside the domain of the distribution or routine
    /// (for example a non-positive value passed to a LogNormal fit).
    InvalidObservation {
        /// Index of the offending observation.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A parameter was outside its valid range (for example a non-positive
    /// scale).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An iterative estimator failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input is empty"),
            StatsError::NotEnoughData { required, provided } => write!(
                f,
                "not enough data: {provided} observations provided, {required} required"
            ),
            StatsError::InvalidObservation { index, value } => {
                write!(f, "invalid observation at index {index}: {value}")
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
            StatsError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::NotEnoughData {
            required: 3,
            provided: 1,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1'));
        assert!(StatsError::EmptyInput.to_string().contains("empty"));
        let e = StatsError::InvalidParameter {
            name: "shape",
            value: -1.0,
        };
        assert!(e.to_string().contains("shape"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}

//! Property suite for the `faas_stats::timeseries` forecasters, pinned in
//! CI with a fixed `PROPTEST_CASES` budget:
//!
//! * forecast monotonicity / linearity under scaled input — feeding
//!   `c · xᵢ` must yield `c ·` the original forecast for any `c ≥ 0`,
//!   and scaling up must never scale a forecast down;
//! * seasonality recovery — fitting over synthetic diurnal series of
//!   arbitrary amplitude, phase, and bin count must reproduce the
//!   peak/trough phase one full period ahead;
//! * exactness of the quantile estimator — the selection-based
//!   [`faas_stats::quantile`] must agree with a fully sorted-vec oracle
//!   on every input and every quantile.

use faas_stats::timeseries::{quantile, ForecastConfig, Forecaster};
use proptest::collection::vec;
use proptest::prelude::*;

fn diurnal(days: usize, bins_per_day: usize, base: f64, amplitude: f64, phase: f64) -> Vec<f64> {
    (0..days * bins_per_day)
        .map(|i| {
            let t = i as f64 / bins_per_day as f64 * std::f64::consts::TAU;
            (base + amplitude * (t - phase).sin()).max(0.0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn quantile_matches_the_sorted_vec_oracle(
        raw in vec(0u32..100_000, 1..80),
        q_milli in 0u32..1_001,
    ) {
        let series: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let q = q_milli as f64 / 1000.0;

        // Oracle: full sort, order statistic at ceil(q * n) - 1.
        let mut sorted = series.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = if q <= 0.0 {
            0
        } else {
            (((sorted.len() as f64) * q).ceil() as usize).saturating_sub(1)
        }
        .min(sorted.len() - 1);

        prop_assert_eq!(quantile(&series, q), Some(sorted[idx]));
    }

    #[test]
    fn forecasts_scale_linearly_and_monotonically(
        raw in vec(0u32..10_000, 8..120),
        scale_tenths in 0u32..50,
        season_len in 0usize..24,
        horizon in 1u64..20,
    ) {
        let series: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let c = scale_tenths as f64 / 10.0;
        let scaled: Vec<f64> = series.iter().map(|v| v * c).collect();
        let cfg = ForecastConfig { season_len, ..ForecastConfig::default() };

        let base = Forecaster::fit(cfg, &series);
        let big = Forecaster::fit(cfg, &scaled);
        let expected = c * base.forecast(horizon);
        let got = big.forecast(horizon);
        // Linearity: every smoothing update is a fixed linear combination of
        // the observations, and the zero floor commutes with c >= 0.
        prop_assert!(
            (got - expected).abs() <= 1e-6 * expected.abs().max(1.0),
            "horizon {}: {} vs {} (c = {})", horizon, got, expected, c
        );
        // Monotonicity under scaling up: c >= 1 never shrinks a forecast.
        if c >= 1.0 {
            prop_assert!(
                got + 1e-9 >= base.forecast(horizon),
                "scaling by {} shrank the forecast", c
            );
        }
        // Rates are never negative, and the horizon peak bounds every step.
        prop_assert!(got >= 0.0);
        let peak = big.forecast_peak(horizon);
        prop_assert!(peak + 1e-9 >= got);
    }

    #[test]
    fn seasonality_is_recovered_on_synthetic_diurnal_series(
        bins_pow in 2u32..6,          // 4..32 bins per day
        amplitude in 20u32..200,
        phase_milli in 0u32..6_283,   // phase in [0, tau)
    ) {
        let bins = 1usize << bins_pow;
        let amplitude = amplitude as f64;
        let base = amplitude + 10.0;
        let phase = phase_milli as f64 / 1000.0;
        let series = diurnal(6, bins, base, amplitude, phase);
        let cfg = ForecastConfig { season_len: bins, ..ForecastConfig::default() };
        let f = Forecaster::fit(cfg, &series);

        // One full period ahead, the forecast must swing with the input: the
        // predicted peak clearly exceeds the predicted trough, recovering a
        // large share of the true amplitude.
        let ahead: Vec<f64> = (1..=bins as u64).map(|h| f.forecast(h)).collect();
        let max = ahead.iter().cloned().fold(f64::MIN, f64::max);
        let min = ahead.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(
            max - min >= 0.5 * amplitude,
            "swing {} too small for amplitude {} ({} bins)",
            max - min, amplitude, bins
        );
    }
}

//! Run the discrete-event platform simulator on a generated Region-2
//! workload, then analyse the *simulated* trace with the same pipeline used
//! for synthetic traces — demonstrating that the simulator emits the Table 1
//! schema end to end — compare two keep-alive settings, and replay the same
//! workload through the streaming path (`run_streamed`) to show the lazy
//! and materialised pipelines produce identical reports.
//!
//! ```text
//! cargo run --release --example simulate_platform
//! ```

use coldstarts::analysis::distributions::DistributionAnalysis;
use faas_platform::{FixedKeepAlive, PlatformConfig, SimulationSpec, Simulator};
use faas_workload::population::PopulationConfig;
use faas_workload::profile::{Calibration, RegionProfile};
use faas_workload::{StreamedWorkload, WorkloadSpec};
use fntrace::Dataset;

fn main() {
    let calibration = Calibration {
        duration_days: 3,
        ..Calibration::default()
    };
    let workload = WorkloadSpec::generate(
        &RegionProfile::r2(),
        calibration,
        &PopulationConfig {
            function_scale: 0.01,
            volume_scale: 1.0e-5,
            max_requests_per_day: 8_000.0,
            min_functions: 40,
        },
        7,
    );
    println!(
        "workload: {} invocation events over {} days, {} functions\n",
        workload.len(),
        calibration.duration_days,
        workload.functions.len()
    );

    // Baseline: the production one-minute keep-alive.
    let (baseline, trace) = Simulator::new().with_seed(3).run(&workload);
    println!("baseline (60 s keep-alive):\n{}\n", baseline.render());

    // Ten-minute keep-alive: fewer cold starts, more idle pod time.
    let (long_ka, _) = Simulator::new()
        .with_seed(3)
        .with_config(PlatformConfig {
            record_trace: false,
            ..PlatformConfig::default()
        })
        .with_keep_alive(Box::new(FixedKeepAlive {
            duration_ms: 600_000,
        }))
        .run(&workload);
    println!("10-minute keep-alive:\n{}\n", long_ka.render());
    println!(
        "cold starts {} -> {} ({:+.1}%), idle pod time {:.0}s -> {:.0}s ({:+.1}%)\n",
        baseline.cold_starts,
        long_ka.cold_starts,
        100.0 * (long_ka.cold_starts as f64 / baseline.cold_starts.max(1) as f64 - 1.0),
        baseline.idle_pod_time_s,
        long_ka.idle_pod_time_s,
        100.0 * (long_ka.idle_pod_time_s / baseline.idle_pod_time_s.max(1e-9) - 1.0),
    );

    // The streaming path: the same workload generated lazily (per-function
    // arrival streams merged by a binary heap) and consumed event by event —
    // no event vector, same report. This is what multi-day horizons use.
    let streamed = StreamedWorkload::generate(
        &RegionProfile::r2(),
        calibration,
        &PopulationConfig {
            function_scale: 0.01,
            volume_scale: 1.0e-5,
            max_requests_per_day: 8_000.0,
            min_functions: 40,
        },
        7,
    );
    let spec = SimulationSpec::new()
        .with_seed(3)
        .with_config(PlatformConfig {
            record_trace: false,
            ..PlatformConfig::default()
        });
    let (eager, _) = spec.run(&workload);
    let (lazy, _) = spec.run_streamed(streamed.header(), streamed.stream());
    assert_eq!(eager, lazy, "streamed and materialised runs are identical");
    println!(
        "streamed replay: {} events consumed lazily, report identical to the eager run\n",
        lazy.events_processed
    );

    // The simulator's trace feeds straight into the analysis pipeline.
    let trace = trace.expect("trace recording enabled by default");
    let mut dataset = Dataset::new();
    dataset.insert_region(trace);
    let distributions = DistributionAnalysis::compute(&dataset);
    let fit = &distributions.overall_fit;
    println!(
        "simulated cold-start durations: LogNormal fit mean {:.2}s std {:.2}s (KS {:.3}) over {} cold starts",
        fit.fitted_mean, fit.fitted_std, fit.ks_distance, fit.sample_count
    );
}

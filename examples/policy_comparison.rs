//! Evaluate the paper's Section-5 mitigation strategies against the
//! production baseline: pre-warming (timers, demand, workflow chains),
//! adaptive / timer-aware keep-alive, peak shaving, resource-pool prediction,
//! and cross-region migration.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use coldstarts::evaluation::{PolicyEvaluation, Scenario};
use coldstarts::policies::cross_region::CrossRegionScheduler;
use coldstarts::policies::pool_prediction::PoolDemandPredictor;
use faas_workload::population::PopulationConfig;
use faas_workload::profile::{Calibration, RegionProfile};
use faas_workload::{SyntheticTraceBuilder, TraceScale, WorkloadSpec};
use fntrace::RegionId;

fn main() {
    let calibration = Calibration {
        duration_days: 3,
        ..Calibration::default()
    };

    // Simulator-based ablation on a Region-2 workload.
    let workload = WorkloadSpec::generate(
        &RegionProfile::r2(),
        calibration,
        &PopulationConfig {
            function_scale: 0.008,
            volume_scale: 8.0e-6,
            max_requests_per_day: 5_000.0,
            min_functions: 40,
        },
        11,
    );
    println!(
        "policy ablation on {} invocation events ({} functions, {} days)\n",
        workload.len(),
        workload.functions.len(),
        calibration.duration_days
    );
    let evaluation = PolicyEvaluation::default();
    let outcomes = evaluation.run(&workload, &Scenario::ALL);
    println!("{}", PolicyEvaluation::render(&outcomes));

    // Trace-level planners: pool prediction and cross-region migration.
    let dataset = SyntheticTraceBuilder::new()
        .with_regions(vec![RegionProfile::r1(), RegionProfile::r2(), RegionProfile::r3()])
        .with_scale(TraceScale::tiny())
        .with_calibration(calibration)
        .with_seed(11)
        .build();

    if let Some(r2) = dataset.region(RegionId::new(2)) {
        let predictor = PoolDemandPredictor::default();
        let plan = predictor.recommend(&r2.cold_starts, &r2.functions);
        let fixed = PoolDemandPredictor::replay_fixed(&r2.cold_starts, &r2.functions, 8);
        let predicted = PoolDemandPredictor::replay_plan(&r2.cold_starts, &r2.functions, &plan);
        println!(
            "resource-pool prediction (R2): fixed pools of 8 cover {:.1}% of demand with {:.0} reserved pods;\n\
             the hour-of-day plan covers {:.1}% with {:.0} reserved pods",
            100.0 * fixed.hit_rate(),
            fixed.mean_reserved_pods,
            100.0 * predicted.hit_rate(),
            predicted.mean_reserved_pods
        );
    }

    if let (Some(r1), Some(r3)) = (
        dataset.region(RegionId::new(1)),
        dataset.region(RegionId::new(3)),
    ) {
        let plan = CrossRegionScheduler::default().plan(r1, r3);
        println!(
            "\ncross-region scheduling: migrating {} asynchronous functions from R1 to R3 changes total\n\
             cold-start delay by an estimated {:.1} s over the trace (negative is an improvement)",
            plan.len(),
            plan.estimated_delay_change_s()
        );
    }
}

//! Evaluate the paper's Section-5 mitigation strategies against the
//! production baseline: pre-warming (timers, demand, workflow chains),
//! adaptive / timer-aware keep-alive, peak shaving, resource-pool prediction,
//! and cross-region migration.
//!
//! The ablation is declared once as an [`ExperimentGrid`] — all eight
//! scenarios over all five paper regions — and every cell runs concurrently.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use std::time::Instant;

use coldstarts::evaluation::{PolicyEvaluation, Scenario};
use coldstarts::experiment::ExperimentGrid;
use coldstarts::policies::cross_region::CrossRegionScheduler;
use coldstarts::policies::pool_prediction::PoolDemandPredictor;
use faas_workload::population::PopulationConfig;
use faas_workload::profile::{Calibration, RegionProfile};
use faas_workload::{SyntheticTraceBuilder, TraceScale};
use fntrace::RegionId;

fn main() {
    let calibration = Calibration {
        duration_days: 3,
        ..Calibration::default()
    };

    // Declarative multi-region ablation: 8 scenarios × 5 regions × 1 seed,
    // executed concurrently (one worker per core).
    let grid = ExperimentGrid {
        calibration,
        population: PopulationConfig {
            function_scale: 0.008,
            volume_scale: 8.0e-6,
            max_requests_per_day: 5_000.0,
            min_functions: 40,
        },
        seeds: vec![11],
        ..ExperimentGrid::full_ablation()
    };
    println!(
        "policy ablation grid: {} scenarios x {} regions x {} seeds = {} cells ({} days each)",
        grid.scenarios.len(),
        grid.regions.len(),
        grid.seeds.len(),
        grid.cell_count(),
        calibration.duration_days
    );
    let start = Instant::now();
    let result = grid.run();
    println!(
        "ran {} cells in {:.2?}\n",
        result.cells.len(),
        start.elapsed()
    );

    // Per-region ablation tables, relative to each region's baseline cell.
    for region in &grid.regions {
        if let Some(outcomes) = result.outcomes(region.region, grid.seeds[0]) {
            println!("region {}:", region.region.index());
            println!("{}", PolicyEvaluation::render(&outcomes));
        }
    }

    // Scenario comparison for the paper's region of interest.
    if let Some(cell) = result.cell(Scenario::Combined, RegionId::new(2), grid.seeds[0]) {
        println!(
            "region 2 combined policies: {} cold starts over {} requests ({:.2}% cold)",
            cell.report.cold_starts,
            cell.report.requests,
            100.0 * cell.report.cold_start_rate()
        );
    }

    // Trace-level planners: pool prediction and cross-region migration.
    let dataset = SyntheticTraceBuilder::new()
        .with_regions(vec![
            RegionProfile::r1(),
            RegionProfile::r2(),
            RegionProfile::r3(),
        ])
        .with_scale(TraceScale::tiny())
        .with_calibration(calibration)
        .with_seed(11)
        .build();

    if let Some(r2) = dataset.region(RegionId::new(2)) {
        let predictor = PoolDemandPredictor::default();
        let plan = predictor.recommend(&r2.cold_starts, &r2.functions);
        let fixed = PoolDemandPredictor::replay_fixed(&r2.cold_starts, &r2.functions, 8);
        let predicted = PoolDemandPredictor::replay_plan(&r2.cold_starts, &r2.functions, &plan);
        println!(
            "\nresource-pool prediction (R2): fixed pools of 8 cover {:.1}% of demand with {:.0} reserved pods;\n\
             the hour-of-day plan covers {:.1}% with {:.0} reserved pods",
            100.0 * fixed.hit_rate(),
            fixed.mean_reserved_pods,
            100.0 * predicted.hit_rate(),
            predicted.mean_reserved_pods
        );
    }

    if let (Some(r1), Some(r3)) = (
        dataset.region(RegionId::new(1)),
        dataset.region(RegionId::new(3)),
    ) {
        let plan = CrossRegionScheduler::default().plan(r1, r3);
        println!(
            "\ncross-region scheduling: migrating {} asynchronous functions from R1 to R3 changes total\n\
             cold-start delay by an estimated {:.1} s over the trace (negative is an improvement)",
            plan.len(),
            plan.estimated_delay_change_s()
        );
    }
}

//! Evaluate the paper's Section-5 mitigation strategies against the
//! production baseline: pre-warming (timers, demand, workflow chains),
//! adaptive / timer-aware keep-alive, peak shaving, resource-pool prediction,
//! and cross-region migration.
//!
//! The ablation is declared once as a `coldstarts::session::ExperimentSession`
//! — all eight scenario policies × one workload source per paper region —
//! and every cell runs concurrently through the session's deterministic
//! merge.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use std::sync::Arc;
use std::time::Instant;

use coldstarts::evaluation::Scenario;
use coldstarts::policies::cross_region::CrossRegionScheduler;
use coldstarts::policies::pool_prediction::PoolDemandPredictor;
use coldstarts::session::{ExperimentSession, RegionSource, SessionReport, WorkloadSource};
use faas_workload::population::PopulationConfig;
use faas_workload::profile::{Calibration, RegionProfile};
use faas_workload::{SyntheticTraceBuilder, TraceScale};
use fntrace::RegionId;

/// Prints one region's ablation table: per-scenario cold starts and the
/// reductions relative to that region's baseline cell.
fn print_region_table(report: &SessionReport, source_index: usize, seed: u64) {
    let column = report.column(source_index, seed);
    let Some(baseline) = column.first() else {
        return;
    };
    println!(
        "{:<24} {:>12} {:>10} {:>14} {:>12}",
        "scenario", "cold starts", "reduction", "mean added (s)", "idle change"
    );
    for cell in &column {
        let reduction = if baseline.report.cold_starts == 0 {
            0.0
        } else {
            1.0 - cell.report.cold_starts as f64 / baseline.report.cold_starts as f64
        };
        let idle_change = if baseline.report.idle_pod_time_s <= 0.0 {
            0.0
        } else {
            cell.report.idle_pod_time_s / baseline.report.idle_pod_time_s - 1.0
        };
        println!(
            "{:<24} {:>12} {:>9.1}% {:>14.4} {:>11.1}%",
            cell.policy,
            cell.report.cold_starts,
            100.0 * reduction,
            cell.report.mean_added_latency_s,
            100.0 * idle_change,
        );
    }
}

fn main() {
    let calibration = Calibration {
        duration_days: 3,
        ..Calibration::default()
    };
    let population = PopulationConfig {
        function_scale: 0.008,
        volume_scale: 8.0e-6,
        max_requests_per_day: 5_000.0,
        min_functions: 40,
    };
    let regions: Vec<RegionProfile> = (1..=5)
        .map(|i| RegionProfile::paper_region(i).expect("regions 1..=5 exist"))
        .collect();
    let seed = 11;

    // Declarative multi-region ablation: 8 scenario policies × 5 region
    // sources × 1 seed, executed concurrently (one worker per core).
    let session = ExperimentSession::new()
        .scenarios(&Scenario::ALL)
        .source_arcs(
            RegionSource::multi(&regions, calibration, &population)
                .into_iter()
                .map(|s| Arc::new(s) as Arc<dyn WorkloadSource>),
        )
        .with_seeds(vec![seed]);
    println!(
        "policy ablation session: {} policies x {} sources x 1 seed = {} cells ({} days each)",
        session.policies.len(),
        session.sources.len(),
        session.cell_count(),
        calibration.duration_days
    );
    let start = Instant::now();
    let report = session.run();
    println!(
        "ran {} cells in {:.2?}\n",
        report.cells.len(),
        start.elapsed()
    );

    // Per-region ablation tables, relative to each region's baseline cell.
    for (i, source) in report.sources.iter().enumerate() {
        println!("{}:", source.label);
        print_region_table(&report, i, seed);
        println!();
    }

    // Scenario comparison for the paper's region of interest.
    let combined_index = Scenario::ALL
        .iter()
        .position(|&s| s == Scenario::Combined)
        .expect("combined is declared");
    if let Some(cell) = report.cell(combined_index, 1, seed) {
        println!(
            "region 2 combined policies: {} cold starts over {} requests ({:.2}% cold)",
            cell.report.cold_starts,
            cell.report.requests,
            100.0 * cell.report.cold_start_rate()
        );
    }

    // Trace-level planners: pool prediction and cross-region migration.
    let dataset = SyntheticTraceBuilder::new()
        .with_regions(vec![
            RegionProfile::r1(),
            RegionProfile::r2(),
            RegionProfile::r3(),
        ])
        .with_scale(TraceScale::tiny())
        .with_calibration(calibration)
        .with_seed(seed)
        .build();

    if let Some(r2) = dataset.region(RegionId::new(2)) {
        let predictor = PoolDemandPredictor::default();
        let plan = predictor.recommend(&r2.cold_starts, &r2.functions);
        let fixed = PoolDemandPredictor::replay_fixed(&r2.cold_starts, &r2.functions, 8);
        let predicted = PoolDemandPredictor::replay_plan(&r2.cold_starts, &r2.functions, &plan);
        println!(
            "\nresource-pool prediction (R2): fixed pools of 8 cover {:.1}% of demand with {:.0} reserved pods;\n\
             the hour-of-day plan covers {:.1}% with {:.0} reserved pods",
            100.0 * fixed.hit_rate(),
            fixed.mean_reserved_pods,
            100.0 * predicted.hit_rate(),
            predicted.mean_reserved_pods
        );
    }

    if let (Some(r1), Some(r3)) = (
        dataset.region(RegionId::new(1)),
        dataset.region(RegionId::new(3)),
    ) {
        let plan = CrossRegionScheduler::default().plan(r1, r3);
        println!(
            "\ncross-region scheduling: migrating {} asynchronous functions from R1 to R3 changes total\n\
             cold-start delay by an estimated {:.1} s over the trace (negative is an improvement)",
            plan.len(),
            plan.estimated_delay_change_s()
        );
    }
}

//! Quickstart: generate a small single-region trace and characterize it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coldstarts::pipeline::CharacterizationPipeline;
use faas_workload::profile::{Calibration, RegionProfile};
use faas_workload::{SyntheticTraceBuilder, TraceScale};
use fntrace::RegionId;

fn main() {
    // A 7-day Region-2 trace at tiny scale generates in a couple of seconds.
    let calibration = Calibration {
        duration_days: 7,
        ..Calibration::default()
    };
    let dataset = SyntheticTraceBuilder::new()
        .with_regions(vec![RegionProfile::r2()])
        .with_scale(TraceScale::tiny())
        .with_calibration(calibration)
        .with_seed(42)
        .build();

    println!(
        "generated {} requests and {} cold starts across {} region(s)\n",
        dataset.total_requests(),
        dataset.total_cold_starts(),
        dataset.region_count()
    );

    let report = CharacterizationPipeline::new()
        .with_calibration(calibration)
        .with_region_of_interest(RegionId::new(2))
        .analyze(&dataset);

    // Headline numbers: cold-start distribution fit and the timer effect.
    let fit = &report.distributions.overall_fit;
    println!(
        "cold-start durations: LogNormal fit mean {:.2}s std {:.2}s over {} cold starts",
        fit.fitted_mean, fit.fitted_std, fit.sample_count
    );
    if let Some(attribution) = &report.attribution {
        println!(
            "functions whose every invocation is a cold start: {:.0}%",
            100.0 * attribution.diagonal_fraction()
        );
    }
    if let Some(utility) = &report.utility {
        println!(
            "pod utility ratio: median {:.2}, {:.0}% of pods below 1",
            utility.overall.ratio.p50,
            100.0 * utility.overall.below_one_fraction
        );
    }
    println!("\nfull report:\n{}", report.render());
}

//! Multi-region trace characterization, the scenario the paper's evaluation
//! is built around: generate all five regions for a full month (at laptop
//! scale), run the complete analysis, and export the trace as CSV files in
//! the public data-release layout.
//!
//! ```text
//! cargo run --release --example trace_analysis -- [days] [output-dir]
//! ```

use std::path::PathBuf;

use coldstarts::pipeline::CharacterizationPipeline;
use faas_workload::profile::Calibration;
use faas_workload::{SyntheticTraceBuilder, TraceScale};
use fntrace::RegionId;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: u32 = args.next().and_then(|d| d.parse().ok()).unwrap_or(14);
    let out_dir: Option<PathBuf> = args.next().map(PathBuf::from);

    let calibration = Calibration {
        duration_days: days,
        ..Calibration::default()
    };
    eprintln!("generating a {days}-day five-region trace at small scale...");
    let dataset = SyntheticTraceBuilder::new()
        .with_scale(TraceScale::small())
        .with_calibration(calibration)
        .with_seed(2024)
        .build();
    eprintln!(
        "generated {} requests, {} cold starts",
        dataset.total_requests(),
        dataset.total_cold_starts()
    );

    let report = CharacterizationPipeline::new()
        .with_calibration(calibration)
        .with_region_of_interest(RegionId::new(2))
        .analyze(&dataset);
    println!("{}", report.render());

    if let Some(dir) = out_dir {
        eprintln!("writing per-region CSV tables to {}", dir.display());
        if let Err(error) = dataset.write_csv_dir(&dir) {
            eprintln!("failed to write CSVs: {error}");
            std::process::exit(1);
        }
    }
}

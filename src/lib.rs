//! Workspace facade for the cold-start reproduction.
//!
//! This crate exists so the repository root can host the cross-crate
//! integration tests (`tests/`) and runnable examples (`examples/`); it
//! re-exports the member crates under their usual names for convenience.
//!
//! The crates compose as a pipeline:
//!
//! `fntrace` (Table 1 data model) → `faas_stats` (numerics) →
//! `faas_workload` (calibrated synthesis) → `faas_platform` (discrete-event
//! simulator) → `coldstarts` (characterization + mitigation policies +
//! experiment grid) → `faas_bench` (figure regeneration).

#![forbid(unsafe_code)]

pub use coldstarts;
pub use faas_platform;
pub use faas_stats;
pub use faas_workload;
pub use fntrace;
